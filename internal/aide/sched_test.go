package aide

import (
	"context"
	"testing"
	"time"

	"aide/internal/sched"
	"aide/internal/websim"
)

// schedDrive advances the sim web (so Evolve generators fire) and ticks
// the scheduler, step by step.
func schedDrive(r *rig, sc *sched.Scheduler, steps int, dt time.Duration) {
	for i := 0; i < steps; i++ {
		r.web.Advance(dt)
		sc.Tick(context.Background())
	}
}

func TestServerSchedulerPollsAndArchives(t *testing.T) {
	r := newRig(t, "Default 0\n")
	fast := r.web.Site("h").Page("/fast")
	fast.Set("v0\n")
	// The page grows a line every 10 simulated minutes.
	r.web.Evolve(fast, 10*time.Minute, websim.AppendGenerator("line", 1))
	still := r.web.Site("h").Page("/still")
	still.Set("static\n")

	r.srv.Register(userA, Registration{URL: "http://h/fast", Title: "Fast"})
	r.srv.Register(userA, Registration{URL: "http://h/still", Title: "Still"})

	cfg := sched.Config{MinInterval: 10 * time.Minute, MaxInterval: 6 * time.Hour,
		HostRPS: 100, Seed: 4}
	sc := r.srv.StartScheduler(cfg)
	if r.srv.Scheduler() != sc {
		t.Fatal("Scheduler() does not return the attached scheduler")
	}
	if sc.Len() != 2 {
		t.Fatalf("scheduler has %d URLs after start, want 2", sc.Len())
	}

	schedDrive(r, sc, 24*6, 10*time.Minute) // one simulated day

	// The fast page was archived repeatedly; the static one wasn't.
	revs, _, err := r.fac.History(userA, "http://h/fast")
	if err != nil {
		t.Fatalf("history: %v", err)
	}
	if len(revs) < 5 {
		t.Errorf("fast page archived %d times over a day of 10m changes, want >= 5", len(revs))
	}
	snap := sc.SnapshotState()
	var fastIv, stillIv float64
	for _, u := range snap.URLs {
		switch u.URL {
		case "http://h/fast":
			fastIv = u.IntervalSeconds
		case "http://h/still":
			stillIv = u.IntervalSeconds
		}
	}
	if fastIv == 0 || stillIv == 0 {
		t.Fatalf("snapshot missing URLs: %+v", snap.URLs)
	}
	if fastIv*3 > stillIv {
		t.Errorf("fast interval %vs vs still %vs: expected clear divergence", fastIv, stillIv)
	}
}

func TestRegistrationJoinsRunningScheduler(t *testing.T) {
	r := newRig(t, "http://h/nope never\nDefault 0\n")
	r.web.Site("h").Page("/a").Set("a\n")
	r.web.Site("h").Page("/b").Set("b\n")
	r.web.Site("h").Page("/root").Set(`<a href="/linked">x</a>` + "\n")
	r.web.Site("h").Page("/linked").Set("leaf\n")

	sc := r.srv.StartScheduler(sched.Config{MinInterval: time.Minute, MaxInterval: time.Hour, HostRPS: 100})
	if sc.Len() != 0 {
		t.Fatalf("fresh scheduler has %d URLs", sc.Len())
	}
	// Late registrations and fixed pages join the schedule.
	r.srv.Register(userA, Registration{URL: "http://h/a"})
	r.srv.AddFixed("http://h/b", "B")
	if sc.Len() != 2 {
		t.Fatalf("scheduler has %d URLs after register+fixed, want 2", sc.Len())
	}
	// `never` URLs stay out even via registration.
	r.srv.Register(userA, Registration{URL: "http://h/nope"})
	if sc.Len() != 2 {
		t.Errorf("never URL joined the schedule")
	}
	// Recursive discovery feeds the scheduler too.
	r.srv.Register(userA, Registration{URL: "http://h/root", Recursive: true})
	schedDrive(r, sc, 5, time.Minute)
	if sc.Len() != 4 {
		t.Errorf("scheduler has %d URLs after recursive discovery, want 4 (root+linked)", sc.Len())
	}
}
