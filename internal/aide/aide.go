// Package aide integrates the three tools — w3newer, snapshot, and
// HtmlDiff — into the AT&T Internet Difference Engine (§6), and
// implements the paper's server-side extensions:
//
//   - §7/§8.3 server-side URL tracking: every URL registered by any user
//     is checked once per sweep regardless of how many users want it;
//     changed pages are archived automatically, and each user's report
//     is computed against the versions that user has seen.
//   - §8.2 fixed pages: a community page set that is archived on every
//     change, with a generated "What's New" page linking to HtmlDiff.
//   - §8.3 recursive tracking: a registered page can be tracked
//     hierarchically — its same-host links are followed one hop and
//     tracked too (Virtual Library pages, collections of related pages).
package aide

import (
	"context"
	"fmt"
	neturl "net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"aide/internal/formreg"
	"aide/internal/htmldoc"
	"aide/internal/obs"
	"aide/internal/robots"
	"aide/internal/sched"
	"aide/internal/simclock"
	"aide/internal/snapshot"
	"aide/internal/w3config"
	"aide/internal/webclient"
)

// Registration is one user's interest in a URL.
type Registration struct {
	// URL is the tracked location.
	URL string
	// Title is the descriptive text for reports.
	Title string
	// Recursive asks the server to also track the page's same-host
	// links, one hop deep (§8.3).
	Recursive bool
}

// urlState is the server's per-URL tracking memory.
type urlState struct {
	lastChecked time.Time
	lastMod     time.Time
	checksum    string
	errCount    int
	lastErr     error
	// derivedFrom is set for URLs discovered by recursive tracking.
	derivedFrom string
	// title is the best-known descriptive text.
	title string
	// recursive marks roots whose links are followed.
	recursive bool
	// fixed marks members of the community fixed-page set (§8.2).
	fixed bool
	// lastNewRev is the archive revision created by the most recent
	// change, with its detection time.
	lastNewRev  string
	lastNewTime time.Time
}

// SweepStats summarises one TrackAll pass.
type SweepStats struct {
	// Distinct is the number of distinct URLs considered.
	Distinct int
	// Checked is how many were actually polled this sweep.
	Checked int
	// Skipped is how many the thresholds suppressed.
	Skipped int
	// NewVersions is how many changed pages were auto-archived.
	NewVersions int
	// Errors is how many checks failed.
	Errors int
	// Degraded is how many of those failures still had last-known-good
	// state (a modification date or checksum from an earlier sweep) to
	// fall back on: the URL is stale, not lost.
	Degraded int
	// Discovered is how many new URLs recursive tracking added.
	Discovered int
	// Canceled is how many URLs were left unchecked because the sweep's
	// context ended first.
	Canceled int
}

// merge folds another sweep's counts into s (Distinct is set once by
// the caller, not merged).
func (s *SweepStats) merge(o SweepStats) {
	s.Checked += o.Checked
	s.Skipped += o.Skipped
	s.NewVersions += o.NewVersions
	s.Errors += o.Errors
	s.Degraded += o.Degraded
	s.Discovered += o.Discovered
	s.Canceled += o.Canceled
}

// Server is the AIDE server: registrations, the shared tracking state,
// and the snapshot facility.
type Server struct {
	// Facility stores the versions.
	Facility *snapshot.Facility
	// Client performs the checks and fetches.
	Client *webclient.Client
	// Config holds the polling thresholds.
	Config *w3config.Config
	// Robots, when non-nil, enforces the exclusion protocol for the
	// server's robot sweeps.
	Robots *robots.Cache
	// Forms, when non-nil, resolves form:<id> pseudo-URLs so saved POST
	// services can be tracked server-side (§8.4).
	Forms *formreg.Registry
	// Clock provides time.
	Clock simclock.Clock
	// Metrics receives the server's sweep counters and histograms, and
	// is what the /debug/metrics endpoint serves; obs.Default when nil.
	Metrics *obs.Registry
	// RequestTimeout, when positive, bounds the work one HTTP request may
	// trigger: handlers derive their context from the request's and add
	// this deadline.
	RequestTimeout time.Duration
	// Concurrency bounds the number of hosts a sweep polls at once.
	// Values <= 1 keep the serial sweep. URLs on the same host are
	// always checked one at a time, whatever the bound.
	Concurrency int
	// MaxSimultaneous, when positive, bounds in-flight HTTP requests on
	// the server's handler: excess requests are shed with 503 and a
	// Retry-After hint instead of queueing without bound.
	MaxSimultaneous int
	// PhaseJitter, when positive, delays each host group's first check
	// in a concurrent sweep by a deterministic per-host offset in
	// [0, PhaseJitter), so sweep starts do not hammer every host at the
	// same instant. Serial sweeps ignore it.
	PhaseJitter time.Duration
	// JitterSeed keys the PhaseJitter offsets.
	JitterSeed int64

	mu    sync.Mutex
	users map[string][]Registration
	urls  map[string]*urlState

	// schedSt holds the attached continuous scheduler, if any; see
	// sched.go.
	schedSt schedState
}

// metrics returns the server's registry (obs.Default when unset).
func (s *Server) metrics() *obs.Registry {
	if s.Metrics != nil {
		return s.Metrics
	}
	return obs.Default
}

// NewServer wires an AIDE server.
func NewServer(fac *snapshot.Facility, client *webclient.Client, cfg *w3config.Config, clock simclock.Clock) *Server {
	if clock == nil {
		clock = simclock.Wall{}
	}
	return &Server{
		Facility: fac,
		Client:   client,
		Config:   cfg,
		Clock:    clock,
		users:    make(map[string][]Registration),
		urls:     make(map[string]*urlState),
	}
}

// Register records a user's interest in a URL. Registering the same URL
// again updates the title and recursive flag.
func (s *Server) Register(user string, reg Registration) {
	s.mu.Lock()
	regs := s.users[user]
	found := false
	for i := range regs {
		if regs[i].URL == reg.URL {
			regs[i] = reg
			found = true
			break
		}
	}
	if !found {
		s.users[user] = append(regs, reg)
	}
	st := s.stateLocked(reg.URL)
	if reg.Title != "" {
		st.title = reg.Title
	}
	st.recursive = st.recursive || reg.Recursive
	s.mu.Unlock()
	s.schedAdd(reg.URL)
}

// AddFixed adds a URL to the community fixed-page set: it is archived
// automatically as soon as a change is detected (§8.2).
func (s *Server) AddFixed(url, title string) {
	s.mu.Lock()
	st := s.stateLocked(url)
	st.fixed = true
	if title != "" {
		st.title = title
	}
	s.mu.Unlock()
	s.schedAdd(url)
}

// Registrations returns a copy of a user's registrations, sorted by URL.
func (s *Server) Registrations(user string) []Registration {
	s.mu.Lock()
	defer s.mu.Unlock()
	regs := append([]Registration(nil), s.users[user]...)
	sort.Slice(regs, func(i, j int) bool { return regs[i].URL < regs[j].URL })
	return regs
}

// stateLocked returns (creating) the state for url; s.mu must be held.
func (s *Server) stateLocked(url string) *urlState {
	st, ok := s.urls[url]
	if !ok {
		st = &urlState{}
		s.urls[url] = st
	}
	return st
}

// trackedURLs snapshots the distinct URL set.
func (s *Server) trackedURLs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	urls := make([]string, 0, len(s.urls))
	for u := range s.urls {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	return urls
}

// TrackAll performs one server-side sweep: each distinct URL is checked
// at most once (§8.3's economy of scale), changed pages are archived
// automatically, and recursive roots contribute their links to the
// tracked set. A done ctx stops the sweep between URLs; the remainder
// is counted in Canceled.
func (s *Server) TrackAll(ctx context.Context) SweepStats {
	var stats SweepStats
	start := s.Clock.Now()
	ctx, span := obs.StartSpan(ctx, "aide.sweep")
	urls := s.trackedURLs()
	span.SetAttr("urls", strconv.Itoa(len(urls)))
	if s.Concurrency <= 1 {
		for i, url := range urls {
			if ctx.Err() != nil {
				stats.Canceled = len(urls) - i
				break
			}
			s.trackOne(ctx, url, &stats)
		}
	} else if s.Facility != nil && s.Facility.Shards() > 1 {
		stats = s.trackAllSharded(ctx, urls)
	} else {
		stats = s.trackAllConcurrent(ctx, urls)
	}
	stats.Distinct = len(s.trackedURLs())
	s.recordSweep(span, stats, start)
	return stats
}

// trackAllConcurrent polls hosts in parallel up to s.Concurrency while
// keeping each host's URLs serial, so one slow or dead host delays only
// its own group and is probed by at most one in-flight request. Each
// group accumulates its own stats and merges them at the end — no
// shared counters on the hot path.
func (s *Server) trackAllConcurrent(ctx context.Context, urls []string) SweepStats {
	type group struct {
		host string
		urls []string
	}
	var groupList []*group
	hostGroup := make(map[string]int)
	for _, u := range urls {
		h := hostOfURL(u)
		if h == "" {
			groupList = append(groupList, &group{urls: []string{u}})
			continue
		}
		gi, ok := hostGroup[h]
		if !ok {
			gi = len(groupList)
			hostGroup[h] = gi
			groupList = append(groupList, &group{host: h})
		}
		groupList[gi].urls = append(groupList[gi].urls, u)
	}
	sem := make(chan struct{}, s.Concurrency)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var total SweepStats
	for _, g := range groupList {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			mu.Lock()
			total.Canceled += len(g.urls)
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(g *group) {
			defer func() {
				<-sem
				wg.Done()
			}()
			var local SweepStats
			// De-synchronise host starts with a deterministic per-host
			// phase offset (same helper as the continuous scheduler).
			if s.PhaseJitter > 0 && g.host != "" {
				d := sched.Jitter(g.host, s.JitterSeed, s.PhaseJitter)
				if err := simclock.Sleep(ctx, s.Clock, d); err != nil {
					local.Canceled += len(g.urls)
					mu.Lock()
					total.merge(local)
					mu.Unlock()
					return
				}
			}
			for _, u := range g.urls {
				if ctx.Err() != nil {
					local.Canceled++
					continue
				}
				s.trackOne(ctx, u, &local)
			}
			mu.Lock()
			total.merge(local)
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	return total
}

// trackAllSharded sweeps each shard of the facility's store in
// parallel: URLs partition by the shard that owns their archive, and
// each shard runs its own host-grouped pool (trackAllConcurrent), so
// sweep throughput scales with the store's partitioning and no shard's
// check-ins contend on another's directory. URLs of one host stay
// serial within a shard; a host whose URLs hash to different shards can
// see one in-flight request per shard — the per-host breakers and
// politeness jitter still bound that.
func (s *Server) trackAllSharded(ctx context.Context, urls []string) SweepStats {
	shards := s.Facility.Shards()
	parts := make([][]string, shards)
	for _, u := range urls {
		k := s.Facility.ShardOf(u)
		parts[k] = append(parts[k], u)
	}
	var wg sync.WaitGroup
	results := make([]SweepStats, shards)
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, part []string) {
			defer wg.Done()
			results[i] = s.trackAllConcurrent(ctx, part)
			s.metrics().Counter(fmt.Sprintf("shard.%03d.swept", i)).Add(int64(results[i].Checked))
		}(i, part)
	}
	wg.Wait()
	var total SweepStats
	for i := range results {
		total.merge(results[i])
	}
	return total
}

// hostOfURL extracts the host[:port] for sweep grouping; hostless
// pseudo-URLs (form:, file paths) yield "".
func hostOfURL(rawURL string) string {
	u, err := neturl.Parse(rawURL)
	if err != nil {
		return ""
	}
	return u.Host
}

// recordSweep finishes a sweep's span and records its metrics. The
// histogram shares the tracker's name — both are the paper's "sweep" —
// so dashboards see one series whichever side did the polling.
func (s *Server) recordSweep(span *obs.Span, stats SweepStats, start time.Time) {
	m := s.metrics()
	dur := s.Clock.Now().Sub(start)
	m.Counter("aide.sweeps").Inc()
	m.Histogram("tracker.sweep.duration", nil).ObserveDuration(dur)
	m.Counter("aide.sweep.checked").Add(int64(stats.Checked))
	m.Counter("aide.sweep.skipped").Add(int64(stats.Skipped))
	m.Counter("aide.sweep.new_versions").Add(int64(stats.NewVersions))
	m.Counter("aide.sweep.errors").Add(int64(stats.Errors))
	m.Counter("aide.sweep.degraded").Add(int64(stats.Degraded))
	m.Counter("aide.sweep.discovered").Add(int64(stats.Discovered))
	m.Counter("aide.sweep.canceled").Add(int64(stats.Canceled))
	span.SetAttr("checked", strconv.Itoa(stats.Checked))
	span.SetAttr("new_versions", strconv.Itoa(stats.NewVersions))
	span.End()
	obs.Logger().Info("aide sweep",
		"distinct", stats.Distinct, "checked", stats.Checked, "skipped", stats.Skipped,
		"new_versions", stats.NewVersions, "errors", stats.Errors, "degraded", stats.Degraded,
		"discovered", stats.Discovered, "canceled", stats.Canceled, "duration", dur)
}

// trackOne checks a single URL under ctx and updates its state and the
// archive, traced as an "aide.check" span nesting the robots, fetch,
// and check-in spans below it.
func (s *Server) trackOne(ctx context.Context, url string, stats *SweepStats) {
	ctx, span := obs.StartSpan(ctx, "aide.check")
	span.SetAttr("url", url)
	defer span.End()
	now := s.Clock.Now()
	s.mu.Lock()
	st := s.stateLocked(url)
	th := s.Config.ThresholdFor(url)
	skip := th.Never || (th.Every > 0 && !st.lastChecked.IsZero() && now.Sub(st.lastChecked) < th.Every)
	recursive := st.recursive
	s.mu.Unlock()
	if skip {
		stats.Skipped++
		return
	}
	if s.Robots != nil && !s.Robots.Allowed(ctx, url) {
		stats.Skipped++
		s.mu.Lock()
		st.lastChecked = now
		s.mu.Unlock()
		return
	}

	stats.Checked++
	var info webclient.PageInfo
	var err error
	if s.Forms != nil && formreg.IsFormURL(url) {
		info, err = s.Forms.Invoke(ctx, s.Client, url)
	} else {
		info, err = s.Client.Check(ctx, url)
	}
	if err == nil {
		if kind := webclient.Classify(info.Status, nil); kind != webclient.OK {
			err = fmt.Errorf("HTTP status %d (%s)", info.Status, kind)
		}
	}
	s.mu.Lock()
	st.lastChecked = now
	if err != nil {
		st.errCount++
		st.lastErr = err
		degraded := !st.lastMod.IsZero() || st.checksum != ""
		s.mu.Unlock()
		stats.Errors++
		if degraded {
			// Earlier sweeps left a modification date or checksum: the
			// URL's answer is stale rather than gone.
			stats.Degraded++
		}
		return
	}
	st.errCount = 0
	st.lastErr = nil

	changed := false
	switch {
	case info.HasLastModified:
		changed = st.lastMod.IsZero() || info.LastModified.After(st.lastMod)
		st.lastMod = info.LastModified
	default:
		changed = st.checksum == "" || st.checksum != info.Checksum
		st.checksum = info.Checksum
	}
	s.mu.Unlock()

	if !changed {
		return
	}
	body := info.Body
	if !info.HasBody {
		full, err := s.Client.Get(ctx, url)
		if err != nil {
			stats.Errors++
			s.mu.Lock()
			st.errCount++
			st.lastErr = err
			s.mu.Unlock()
			return
		}
		body = full.Body
	}
	res, err := s.Facility.RememberContent(ctx, "", url, body)
	if err != nil {
		stats.Errors++
		return
	}
	if res.Changed {
		stats.NewVersions++
		s.mu.Lock()
		st.lastNewRev = res.Rev
		st.lastNewTime = now
		s.mu.Unlock()
	}
	if recursive {
		stats.Discovered += s.discoverLinks(url, body)
	}
}

// discoverLinks adds a recursive root's same-host links to the tracked
// set (one hop: discovered pages are not themselves recursive).
func (s *Server) discoverLinks(rootURL, body string) int {
	var newLinks []string
	seen := map[string]bool{}
	for _, href := range htmldoc.Links(body) {
		link := htmldoc.ResolveLink(rootURL, href)
		if link == "" || link == rootURL || seen[link] || !htmldoc.SameHost(rootURL, link) {
			continue
		}
		seen[link] = true
		s.mu.Lock()
		if _, exists := s.urls[link]; !exists {
			st := s.stateLocked(link)
			st.derivedFrom = rootURL
			st.title = "(via " + rootURL + ")"
			newLinks = append(newLinks, link)
		}
		s.mu.Unlock()
	}
	// Hand discoveries to the scheduler outside s.mu.
	for _, link := range newLinks {
		s.schedAdd(link)
	}
	return len(newLinks)
}

// UserRow is one line of a user's server-side report.
type UserRow struct {
	// Registration echoes the user's entry.
	Registration
	// HeadRev is the newest archived revision ("" when never archived).
	HeadRev string
	// HeadDate is the newest revision's check-in time.
	HeadDate time.Time
	// SeenRev is the newest revision this user has seen ("" if none).
	SeenRev string
	// Changed reports whether the archive is ahead of the user.
	Changed bool
	// Err carries the URL's most recent check failure.
	Err error
}

// ReportFor computes a user's view of the shared tracking state: which
// of their pages have versions they have not seen (§8.3: "a user could
// request a list of all pages that have been saved away, and get an
// indication of which pages have changed since they were saved by the
// user").
func (s *Server) ReportFor(user string) []UserRow {
	regs := s.Registrations(user)
	rows := make([]UserRow, 0, len(regs))
	for _, reg := range regs {
		row := UserRow{Registration: reg}
		s.mu.Lock()
		if st, ok := s.urls[reg.URL]; ok && st.lastErr != nil {
			row.Err = st.lastErr
		}
		s.mu.Unlock()
		revs, seen, err := s.Facility.History(user, reg.URL)
		if err == nil && len(revs) > 0 {
			row.HeadRev = revs[0].Num
			row.HeadDate = revs[0].Date
			for _, r := range revs {
				if seen[r.Num] {
					row.SeenRev = r.Num
					break // newest-first: first hit is newest seen
				}
			}
			row.Changed = !seen[row.HeadRev]
		}
		rows = append(rows, row)
	}
	return rows
}

// MarkSeen records that the user has now seen the head revision of url
// (the user followed the Diff link and caught up). Checking the head
// text in again is a no-op for the archive but updates the user's
// control file.
func (s *Server) MarkSeen(ctx context.Context, user, url string) error {
	text, err := s.Facility.Checkout(url, "")
	if err != nil {
		return err
	}
	_, err = s.Facility.RememberContent(ctx, user, url, text)
	return err
}

// FixedChange is one entry of the community "What's New" page.
type FixedChange struct {
	URL     string
	Title   string
	Rev     string
	Changed time.Time
}

// FixedChanges lists the fixed-page set's most recent changes, newest
// first — the data behind the §8.2 "specialized What's New page".
func (s *Server) FixedChanges() []FixedChange {
	s.mu.Lock()
	var out []FixedChange
	for url, st := range s.urls {
		if !st.fixed || st.lastNewRev == "" {
			continue
		}
		title := st.title
		if title == "" {
			title = url
		}
		out = append(out, FixedChange{URL: url, Title: title, Rev: st.lastNewRev, Changed: st.lastNewTime})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Changed.Equal(out[j].Changed) {
			return out[i].Changed.After(out[j].Changed)
		}
		return out[i].URL < out[j].URL
	})
	return out
}

// TrackedCount returns the number of distinct URLs under management and
// how many were discovered recursively.
func (s *Server) TrackedCount() (total, derived int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.urls {
		if st.derivedFrom != "" {
			derived++
		}
	}
	return len(s.urls), derived
}
