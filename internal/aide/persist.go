package aide

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"aide/internal/fsatomic"
)

// This file persists the server's registration and tracking state so
// that a snapshotd restart does not lose who is tracking what — the
// archives themselves already live on disk in the snapshot facility.

// persistedState is the on-disk form of the server's mutable state.
type persistedState struct {
	Users map[string][]Registration `json:"users"`
	URLs  map[string]persistedURL   `json:"urls"`
}

// persistedURL is the durable subset of urlState. Transient per-run
// fields (lastErr, errCount) restart clean.
type persistedURL struct {
	LastChecked time.Time `json:"last_checked,omitzero"`
	LastMod     time.Time `json:"last_mod,omitzero"`
	Checksum    string    `json:"checksum,omitempty"`
	Title       string    `json:"title,omitempty"`
	Recursive   bool      `json:"recursive,omitempty"`
	Fixed       bool      `json:"fixed,omitempty"`
	DerivedFrom string    `json:"derived_from,omitempty"`
	LastNewRev  string    `json:"last_new_rev,omitempty"`
	LastNewTime time.Time `json:"last_new_time,omitzero"`
}

// SaveState writes the registrations and per-URL tracking state to path.
func (s *Server) SaveState(path string) error {
	s.mu.Lock()
	ps := persistedState{
		Users: make(map[string][]Registration, len(s.users)),
		URLs:  make(map[string]persistedURL, len(s.urls)),
	}
	for u, regs := range s.users {
		sorted := append([]Registration(nil), regs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].URL < sorted[j].URL })
		ps.Users[u] = sorted
	}
	for u, st := range s.urls {
		ps.URLs[u] = persistedURL{
			LastChecked: st.lastChecked,
			LastMod:     st.lastMod,
			Checksum:    st.checksum,
			Title:       st.title,
			Recursive:   st.recursive,
			Fixed:       st.fixed,
			DerivedFrom: st.derivedFrom,
			LastNewRev:  st.lastNewRev,
			LastNewTime: st.lastNewTime,
		}
	}
	s.mu.Unlock()

	data, err := json.MarshalIndent(ps, "", "  ")
	if err != nil {
		return err
	}
	return fsatomic.WriteFile(path, data, 0o644)
}

// LoadState restores state written by SaveState. A missing file is not
// an error (first start).
func (s *Server) LoadState(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var ps persistedState
	if err := json.Unmarshal(data, &ps); err != nil {
		return fmt.Errorf("aide: corrupt state file %s: %v", path, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for u, regs := range ps.Users {
		s.users[u] = append(s.users[u], regs...)
	}
	for u, p := range ps.URLs {
		st := s.stateLocked(u)
		st.lastChecked = p.LastChecked
		st.lastMod = p.LastMod
		st.checksum = p.Checksum
		st.title = p.Title
		st.recursive = p.Recursive
		st.fixed = p.Fixed
		st.derivedFrom = p.DerivedFrom
		st.lastNewRev = p.LastNewRev
		st.lastNewTime = p.LastNewTime
	}
	return nil
}
