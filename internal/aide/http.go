package aide

import (
	"context"
	"fmt"
	"html"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"aide/internal/breaker"
	"aide/internal/obs"
	"aide/internal/snapshot"
)

// This file is the AIDE server's HTTP face: the per-user what's-new
// report with its Remember/Diff/History links (§6), the registration
// endpoint that replaces installing w3newer locally (§7: "it is too
// time-consuming to install w3newer on one's own machine ... the primary
// motivation for moving the functionality of w3newer into the AIDE
// server"), and the community What's-New page for the fixed set (§8.2).
// The snapshot facility's own endpoints are mounted alongside.

// reqCtx derives the working context for one request: the request's own
// context (canceled when the client goes away) plus the server's
// per-request deadline.
func (s *Server) reqCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if s.RequestTimeout > 0 {
		return context.WithTimeout(ctx, s.RequestTimeout)
	}
	return context.WithCancel(ctx)
}

// Handler returns the combined AIDE HTTP mux: aide's own routes plus
// the snapshot facility's mounted at "/", behind one load-shedding gate
// and one RED middleware — requests that fall through to the snapshot
// routes are labeled with the snapshot mux's pattern (endpoint="/diff",
// not the catch-all "/"), and recorded exactly once.
func (s *Server) Handler(snap *snapshot.Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/report", s.handleReport)
	mux.HandleFunc("/register", s.handleRegister)
	mux.HandleFunc("/seen", s.handleSeen)
	mux.HandleFunc("/whatsnew", s.handleWhatsNew)
	mux.HandleFunc("/diffall", s.handleDiffAll)
	mux.HandleFunc("/form/save", s.handleFormSave)
	mux.HandleFunc("/form/list", s.handleFormList)
	mux.HandleFunc("/form/invoke", s.handleFormInvoke)
	mux.HandleFunc("/status", s.handleStatus)
	debug := obs.Handler(s.metrics(), nil)
	mux.Handle("/debug/metrics", debug)
	mux.Handle("/metrics", debug)
	mux.Handle("/debug/traces", debug)
	var gate *snapshot.Gate
	mux.HandleFunc("/debug/health", func(w http.ResponseWriter, r *http.Request) {
		var set *breaker.Set
		if s.Client != nil {
			set = s.Client.Breakers
		}
		snapshot.ServeHealth(w, set, gate)
	})
	mux.HandleFunc("/debug/sched", func(w http.ResponseWriter, r *http.Request) {
		sc := s.Scheduler()
		if sc == nil {
			http.Error(w, "no scheduler attached (batch-sweep mode)", http.StatusNotFound)
			return
		}
		sc.DebugHandler().ServeHTTP(w, r)
	})
	var snapRoute func(*http.Request) string
	var snapShard func(*http.Request) string
	if snap != nil {
		inner, route := snap.Embedded()
		mux.Handle("/", inner)
		snapRoute = route
		snapShard = snap.ShardLabel
	}
	aideRoute := obs.RouteFromMux(mux)
	var h http.Handler = mux
	if s.MaxSimultaneous > 0 {
		gate = snapshot.NewGate(mux, s.MaxSimultaneous)
		gate.Metrics = s.metrics()
		h = gate
	}
	return obs.HTTPMiddleware(h, obs.MiddlewareConfig{
		Registry: s.metrics(),
		Service:  "aide",
		Route: func(r *http.Request) string {
			route := aideRoute(r)
			if route == "/" && snapRoute != nil {
				return snapRoute(r)
			}
			return route
		},
		Shard: snapShard,
	})
}

// handleFormSave stores a filled-out form so that a POST service can be
// tracked (§8.4). The request itself is a form submission: the reserved
// fields `action`, `title`, and `user` configure the registration and
// every remaining field is stored as service input. The user changes
// their form's ACTION to this endpoint — "the URL the form invokes [is]
// something provided by AIDE".
func (s *Server) handleFormSave(w http.ResponseWriter, r *http.Request) {
	if s.Forms == nil {
		http.Error(w, "form tracking not enabled", http.StatusNotImplemented)
		return
	}
	if err := r.ParseForm(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	action := r.Form.Get("action")
	if action == "" {
		http.Error(w, "need an action parameter (the service URL)", http.StatusBadRequest)
		return
	}
	title := r.Form.Get("title")
	user := r.Form.Get("user")
	fields := url.Values{}
	for k, vs := range r.Form {
		switch k {
		case "action", "title", "user":
			continue
		}
		fields[k] = vs
	}
	saved, err := s.Forms.Save(title, action, fields)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if user != "" {
		s.Register(user, Registration{URL: saved.PseudoURL(), Title: title})
	}
	w.Header().Set("Content-Type", "text/html")
	fmt.Fprintf(w, "<HTML><BODY>Saved form <B>%s</B> for service %s.<BR>\nTrack it as <CODE>%s</CODE> "+
		"or <A HREF=\"/form/invoke?id=%s\">invoke it now</A>.</BODY></HTML>\n",
		html.EscapeString(title), html.EscapeString(action), saved.PseudoURL(), saved.ID)
}

// handleFormList shows the saved forms.
func (s *Server) handleFormList(w http.ResponseWriter, r *http.Request) {
	if s.Forms == nil {
		http.Error(w, "form tracking not enabled", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/html")
	fmt.Fprint(w, "<HTML><BODY><H1>Saved forms</H1>\n<UL>\n")
	for _, f := range s.Forms.All() {
		title := f.Title
		if title == "" {
			title = f.Action
		}
		fmt.Fprintf(w, "<LI><CODE>%s</CODE> &mdash; %s -> %s [<A HREF=\"/form/invoke?id=%s\">invoke</A>]\n",
			f.PseudoURL(), html.EscapeString(title), html.EscapeString(f.Action), f.ID)
	}
	fmt.Fprint(w, "</UL>\n</BODY></HTML>\n")
}

// handleFormInvoke replays a saved form and returns the service output,
// making the pseudo-URL browsable through AIDE.
func (s *Server) handleFormInvoke(w http.ResponseWriter, r *http.Request) {
	if s.Forms == nil {
		http.Error(w, "form tracking not enabled", http.StatusNotImplemented)
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		http.Error(w, "need an id parameter", http.StatusBadRequest)
		return
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	info, err := s.Forms.Invoke(ctx, s.Client, id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/html")
	fmt.Fprint(w, info.Body)
}

// handleRegister adds a URL to the user's server-side hotlist.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	user, pageURL := q.Get("user"), q.Get("url")
	if user == "" || pageURL == "" {
		http.Error(w, "need user and url parameters", http.StatusBadRequest)
		return
	}
	s.Register(user, Registration{
		URL:       pageURL,
		Title:     q.Get("title"),
		Recursive: q.Get("recursive") == "1",
	})
	w.Header().Set("Content-Type", "text/html")
	fmt.Fprintf(w, "<HTML><BODY>Registered <A HREF=\"%s\">%s</A> for %s.</BODY></HTML>\n",
		html.EscapeString(pageURL), html.EscapeString(pageURL), html.EscapeString(user))
}

// handleSeen marks the head revision seen (the browser-history gap of
// §6: viewing a page via HtmlDiff does not update the real browser
// history, so the server offers an explicit catch-up).
func (s *Server) handleSeen(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	user, pageURL := q.Get("user"), q.Get("url")
	if user == "" || pageURL == "" {
		http.Error(w, "need user and url parameters", http.StatusBadRequest)
		return
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	if err := s.MarkSeen(ctx, user, pageURL); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/html")
	fmt.Fprintf(w, "<HTML><BODY>Marked %s as seen for %s.</BODY></HTML>\n",
		html.EscapeString(pageURL), html.EscapeString(user))
}

// handleReport renders the user's server-side what's-new report.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	if user == "" {
		http.Error(w, "need user parameter", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/html")
	fmt.Fprint(w, s.ReportHTML(user))
}

// ReportHTML renders ReportFor as the Figure 1-style page with the three
// AIDE links per row.
func (s *Server) ReportHTML(user string) string {
	rows := s.ReportFor(user)
	changed := 0
	for _, row := range rows {
		if row.Changed {
			changed++
		}
	}
	var sb strings.Builder
	sb.WriteString("<HTML><HEAD><TITLE>AIDE report</TITLE></HEAD><BODY>\n")
	fmt.Fprintf(&sb, "<H1>What's new for %s</H1>\n", html.EscapeString(user))
	fmt.Fprintf(&sb, "<P>%d of %d tracked pages have versions you have not seen.</P>\n<HR>\n<DL>\n",
		changed, len(rows))
	for _, row := range rows {
		title := row.Title
		if title == "" {
			title = row.URL
		}
		q := url.Values{}
		q.Set("url", row.URL)
		q.Set("user", user)
		enc := q.Encode()
		fmt.Fprintf(&sb,
			"<DT><A HREF=\"%s\">%s</A> &nbsp;[<A HREF=\"/remember?%s\">Remember</A>] [<A HREF=\"/diff?%s\">Diff</A>] [<A HREF=\"/history?%s\">History</A>]\n",
			html.EscapeString(row.URL), html.EscapeString(title), enc, enc, enc)
		switch {
		case row.Err != nil:
			fmt.Fprintf(&sb, "<DD><B>Error</B>: %s.\n", html.EscapeString(row.Err.Error()))
		case row.HeadRev == "":
			sb.WriteString("<DD>Not yet archived.\n")
		case row.Changed:
			fmt.Fprintf(&sb, "<DD><B>Changed</B>: revision %s of %s is newer than what you have seen%s.\n",
				row.HeadRev, row.HeadDate.UTC().Format(time.ANSIC), seenClause(row.SeenRev))
		default:
			fmt.Fprintf(&sb, "<DD>Seen: you are current at revision %s.\n", row.HeadRev)
		}
	}
	sb.WriteString("</DL>\n</BODY></HTML>\n")
	return sb.String()
}

func seenClause(rev string) string {
	if rev == "" {
		return " (you have seen none)"
	}
	return " (you have seen " + rev + ")"
}

// handleWhatsNew renders the §8.2 community page for the fixed set.
func (s *Server) handleWhatsNew(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html")
	fmt.Fprint(w, s.WhatsNewHTML())
}

// WhatsNewHTML renders the fixed-page changes, newest first, each with a
// link to HtmlDiff between the two most recent versions and to the full
// history.
func (s *Server) WhatsNewHTML() string {
	changes := s.FixedChanges()
	var sb strings.Builder
	sb.WriteString("<HTML><HEAD><TITLE>What's New</TITLE></HEAD><BODY>\n<H1>What's New</H1>\n")
	fmt.Fprintf(&sb, "<P>%d recently changed pages in the community set.</P>\n<UL>\n", len(changes))
	for _, c := range changes {
		q := url.Values{}
		q.Set("url", c.URL)
		enc := q.Encode()
		fmt.Fprintf(&sb, "<LI><A HREF=\"%s\">%s</A> &mdash; changed %s (rev %s)",
			html.EscapeString(c.URL), html.EscapeString(c.Title),
			c.Changed.UTC().Format(time.ANSIC), c.Rev)
		if prev := previousRev(c.Rev); prev != "" {
			fmt.Fprintf(&sb, " [<A HREF=\"/diff?%s&r1=%s&r2=%s\">what changed</A>]", enc, prev, c.Rev)
		}
		fmt.Fprintf(&sb, " [<A HREF=\"/history?%s\">history</A>]\n", enc)
	}
	sb.WriteString("</UL>\n</BODY></HTML>\n")
	return sb.String()
}

// previousRev returns the trunk revision before rev ("" for 1.1).
func previousRev(rev string) string {
	i := strings.LastIndexByte(rev, '.')
	if i < 0 {
		return ""
	}
	var minor int
	if _, err := fmt.Sscanf(rev[i+1:], "%d", &minor); err != nil || minor <= 1 {
		return ""
	}
	return fmt.Sprintf("%s.%d", rev[:i], minor-1)
}

// handleStatus renders the operational overview: who tracks what, how
// big the repository is, and how well the diff cache is doing.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	total, derived := s.TrackedCount()
	users := s.Users()
	stats, err := s.Facility.Storage()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html")
	var sb strings.Builder
	sb.WriteString("<HTML><HEAD><TITLE>AIDE status</TITLE></HEAD><BODY>\n<H1>AIDE status</H1>\n<UL>\n")
	fmt.Fprintf(&sb, "<LI>%d distinct URLs tracked (%d discovered recursively)\n", total, derived)
	fmt.Fprintf(&sb, "<LI>%d registered users\n", len(users))
	fmt.Fprintf(&sb, "<LI>%d archived URLs, %.2f MB total (%.1f KB/URL)\n",
		stats.URLs, float64(stats.TotalBytes)/(1<<20), stats.MeanBytes()/1024)
	fmt.Fprintf(&sb, "<LI>%d HtmlDiff cache hits\n", s.Facility.DiffCacheHits())
	sb.WriteString("</UL>\n")
	if len(stats.PerURL) > 0 {
		sb.WriteString("<H2>Largest archives</H2>\n<OL>\n")
		for i, u := range stats.PerURL {
			if i >= 5 {
				break
			}
			fmt.Fprintf(&sb, "<LI>%s &mdash; %.1f KB\n", html.EscapeString(u.URL), float64(u.Bytes)/1024)
		}
		sb.WriteString("</OL>\n")
	}
	sb.WriteString("</BODY></HTML>\n")
	fmt.Fprint(w, sb.String())
}

// Users lists users with registrations, sorted (for status pages).
func (s *Server) Users() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	users := make([]string, 0, len(s.users))
	for u := range s.users {
		users = append(users, u)
	}
	sort.Strings(users)
	return users
}
