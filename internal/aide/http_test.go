package aide

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"aide/internal/snapshot"
)

// httpRig stands up the combined AIDE server over real HTTP.
func httpRig(t *testing.T) (*rig, *httptest.Server) {
	t.Helper()
	r := newRig(t, "Default 0\n")
	snap := snapshot.NewServer(r.fac)
	snap.KeepaliveInterval = 0
	ts := httptest.NewServer(r.srv.Handler(snap))
	t.Cleanup(ts.Close)
	return r, ts
}

func fetch(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestEndToEndOverHTTP(t *testing.T) {
	r, ts := httpRig(t)
	p := r.web.Site("h").Page("/p")
	p.Set("<P>Original page sentence content.</P>\n")
	q := "user=" + url.QueryEscape(userA) + "&url=" + url.QueryEscape("http://h/p")

	// Register, sweep, report.
	code, _ := fetch(t, ts.URL+"/register?"+q+"&title="+url.QueryEscape("My Page"))
	if code != 200 {
		t.Fatalf("register code = %d", code)
	}
	r.srv.TrackAll(context.Background())
	code, body := fetch(t, ts.URL+"/report?user="+url.QueryEscape(userA))
	if code != 200 || !strings.Contains(body, "<B>Changed</B>") || !strings.Contains(body, "My Page") {
		t.Fatalf("report: %d\n%s", code, body)
	}

	// Catch up via /seen; report flips to current.
	code, _ = fetch(t, ts.URL+"/seen?"+q)
	if code != 200 {
		t.Fatalf("seen code = %d", code)
	}
	_, body = fetch(t, ts.URL+"/report?user="+url.QueryEscape(userA))
	if !strings.Contains(body, "you are current at revision 1.1") {
		t.Fatalf("report after seen:\n%s", body)
	}

	// Page changes; sweep archives it; Diff link (snapshot mount) works.
	r.web.Advance(time.Hour)
	p.Set("<P>Original page sentence content. Fresh addition appended here.</P>\n")
	r.srv.TrackAll(context.Background())
	code, body = fetch(t, ts.URL+"/diff?"+q+"&r1=1.1&r2=1.2")
	if code != 200 || !strings.Contains(body, "<STRONG><I>Fresh") {
		t.Fatalf("diff via mount: %d\n%s", code, body)
	}
}

func TestWhatsNewEndpoint(t *testing.T) {
	r, ts := httpRig(t)
	p := r.web.Site("h").Page("/f")
	p.Set("v1\n")
	r.srv.AddFixed("http://h/f", "Fixed Page")
	r.srv.TrackAll(context.Background())
	r.web.Advance(time.Hour)
	p.Set("v2\n")
	r.srv.TrackAll(context.Background())

	code, body := fetch(t, ts.URL+"/whatsnew")
	if code != 200 || !strings.Contains(body, "Fixed Page") {
		t.Fatalf("whatsnew: %d\n%s", code, body)
	}
}

func TestHTTPParamValidation(t *testing.T) {
	_, ts := httpRig(t)
	for _, path := range []string{"/register", "/seen", "/report"} {
		code, _ := fetch(t, ts.URL+path)
		if code != 400 {
			t.Errorf("%s without params: code = %d", path, code)
		}
	}
}

func TestStatusEndpoint(t *testing.T) {
	r, ts := httpRig(t)
	r.web.Site("h").Page("/p").Set("content\n")
	r.srv.Register(userA, Registration{URL: "http://h/p", Title: "P"})
	r.srv.TrackAll(context.Background())
	code, body := fetch(t, ts.URL+"/status")
	if code != 200 {
		t.Fatalf("status code = %d", code)
	}
	for _, want := range []string{"1 distinct URLs tracked", "1 registered users", "archived URLs", "Largest archives"} {
		if !strings.Contains(body, want) {
			t.Errorf("status missing %q:\n%s", want, body)
		}
	}
}
