package aide

import (
	"context"
	"fmt"
	"html"
	"net/http"
	"strings"

	"aide/internal/htmldoc"
	"aide/internal/snapshot"
)

// This file implements recursive HtmlDiff, the §5.3/§8.3 extension:
// "HtmlDiff could in turn be invoked recursively" over the pages a
// registered page refers to — so a single "home page" entry yields a
// combined view of what changed anywhere in the collection.

// ChildDiff is the comparison of one page referenced by the root.
type ChildDiff struct {
	// URL is the referenced page.
	URL string
	// Diff is the comparison ("since the user last saw it" when the
	// user has saved it, otherwise the two newest archived revisions).
	Diff snapshot.DiffResult
	// Skipped explains why no comparison was produced ("" when Diff is
	// valid): "not archived", "only one version", or an error text.
	Skipped string
}

// RecursiveDiff is a root page's comparison plus its children's.
type RecursiveDiff struct {
	// RootURL is the registered page.
	RootURL string
	// Root is the root page's own comparison.
	Root snapshot.DiffResult
	// Children are the same-host referenced pages, in link order.
	Children []ChildDiff
}

// ChangedChildren counts children with real differences.
func (r RecursiveDiff) ChangedChildren() int {
	n := 0
	for _, c := range r.Children {
		if c.Skipped == "" && c.Diff.Stats.Changed() {
			n++
		}
	}
	return n
}

// DiffRecursive compares the root page since the user last saved it and
// then every same-host page the *current* root links to, one hop deep;
// ctx bounds the live fetches the comparisons need.
func (s *Server) DiffRecursive(ctx context.Context, user, rootURL string) (RecursiveDiff, error) {
	out := RecursiveDiff{RootURL: rootURL}
	rootDiff, err := s.Facility.DiffSinceSaved(ctx, user, rootURL)
	if err != nil {
		return out, err
	}
	out.Root = rootDiff

	// Walk the current root content's links.
	head, err := s.Facility.Checkout(rootURL, "")
	if err != nil {
		return out, err
	}
	seen := map[string]bool{}
	for _, href := range htmldoc.Links(head) {
		link := htmldoc.ResolveLink(rootURL, href)
		if link == "" || link == rootURL || seen[link] || !htmldoc.SameHost(rootURL, link) {
			continue
		}
		seen[link] = true
		out.Children = append(out.Children, s.diffChild(ctx, user, link))
	}
	return out, nil
}

// diffChild produces one child's comparison, preferring the user's own
// last-seen version as the baseline.
func (s *Server) diffChild(ctx context.Context, user, link string) ChildDiff {
	c := ChildDiff{URL: link}
	if d, err := s.Facility.DiffSinceSaved(ctx, user, link); err == nil {
		c.Diff = d
		return c
	}
	// The user never saved it; fall back to the newest archived pair.
	revs, _, err := s.Facility.History("", link)
	switch {
	case err != nil:
		c.Skipped = "not archived"
		return c
	case len(revs) < 2:
		c.Skipped = "only one version"
		return c
	}
	d, err := s.Facility.DiffRevs(link, revs[1].Num, revs[0].Num)
	if err != nil {
		c.Skipped = err.Error()
		return c
	}
	c.Diff = d
	return c
}

// RecursiveDiffHTML renders the combined report: the root's merged page
// followed by a section per referenced page.
func (s *Server) RecursiveDiffHTML(ctx context.Context, user, rootURL string) (string, error) {
	rd, err := s.DiffRecursive(ctx, user, rootURL)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "<HTML><HEAD><TITLE>Recursive HtmlDiff: %s</TITLE></HEAD><BODY>\n",
		html.EscapeString(rootURL))
	fmt.Fprintf(&sb, "<H1>Changes in %s and the pages it references</H1>\n",
		html.EscapeString(rootURL))
	fmt.Fprintf(&sb, "<P>%d of %d referenced pages changed.</P>\n<HR>\n",
		rd.ChangedChildren(), len(rd.Children))
	sb.WriteString("<H2>The page itself</H2>\n")
	sb.WriteString(rd.Root.HTML)
	for _, c := range rd.Children {
		fmt.Fprintf(&sb, "<HR>\n<H2>Referenced: <A HREF=\"%s\">%s</A></H2>\n",
			html.EscapeString(c.URL), html.EscapeString(c.URL))
		switch {
		case c.Skipped != "":
			fmt.Fprintf(&sb, "<P>(%s)</P>\n", html.EscapeString(c.Skipped))
		case !c.Diff.Stats.Changed():
			sb.WriteString("<P>No differences.</P>\n")
		default:
			sb.WriteString(c.Diff.HTML)
		}
	}
	sb.WriteString("</BODY></HTML>\n")
	return sb.String(), nil
}

// handleDiffAll serves the recursive comparison.
func (s *Server) handleDiffAll(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	user, pageURL := q.Get("user"), q.Get("url")
	if user == "" || pageURL == "" {
		http.Error(w, "need user and url parameters", http.StatusBadRequest)
		return
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	out, err := s.RecursiveDiffHTML(ctx, user, pageURL)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/html")
	fmt.Fprint(w, out)
}
