package aide

import (
	"context"
	"sync"
	"time"

	"aide/internal/sched"
)

// This file hooks the AIDE server up to the continuous polling
// scheduler (internal/sched). A scheduled server stops doing lockstep
// TrackAll sweeps: every tracked URL carries its own next-due time,
// adapted to its observed change rate, and the scheduler drains due
// URLs through the same trackOne path a sweep would use. TrackAll
// remains available as a one-shot ("check everything now") operation.

// schedState is the server's scheduler attachment, guarded separately
// from s.mu so registration paths can hand new URLs to the scheduler
// after releasing the server lock (lock order: s.mu before schedMu,
// never both held across a scheduler call that polls).
type schedState struct {
	mu sync.Mutex
	sc *sched.Scheduler
}

func (ss *schedState) get() *sched.Scheduler {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.sc
}

// StartScheduler builds a continuous scheduler over the server's
// tracked URL set and attaches it: every currently tracked URL is
// scheduled, and URLs added later (Register, AddFixed, recursive
// discovery) join the schedule as they appear. The caller owns the
// returned scheduler's lifecycle — typically `go sc.Run(ctx)`.
// Calling StartScheduler again replaces the attachment.
func (s *Server) StartScheduler(cfg sched.Config) *sched.Scheduler {
	sc, _ := s.StartSchedulerFromState(cfg, "")
	return sc
}

// StartSchedulerFromState is StartScheduler with persistence: saved
// estimator state at statePath (if any) is loaded before the tracked
// URLs are scheduled, so change rates and due times survive restarts.
// The scheduler is attached even when loading fails; the error only
// reports why history was discarded.
func (s *Server) StartSchedulerFromState(cfg sched.Config, statePath string) (*sched.Scheduler, error) {
	sc := sched.New(cfg)
	sc.Clock = s.Clock
	sc.Metrics = s.metrics()
	if s.Client != nil {
		sc.Breakers = s.Client.Breakers
	}
	sc.Poll = s.pollOne
	sc.Floor = func(url string) (time.Duration, bool) {
		th := s.Config.ThresholdFor(url)
		return th.Every, th.Never
	}
	var loadErr error
	if statePath != "" {
		loadErr = sc.LoadState(statePath)
	}
	s.schedSt.mu.Lock()
	s.schedSt.sc = sc
	s.schedSt.mu.Unlock()
	for _, u := range s.trackedURLs() {
		sc.Add(u)
	}
	return sc, loadErr
}

// Scheduler returns the attached scheduler, or nil when the server
// runs in batch-sweep mode.
func (s *Server) Scheduler() *sched.Scheduler { return s.schedSt.get() }

// schedAdd hands a newly tracked URL to the scheduler, if one is
// attached. Callers must not hold s.mu (the scheduler takes its own
// lock and may consult the threshold config).
func (s *Server) schedAdd(url string) {
	if sc := s.schedSt.get(); sc != nil {
		sc.Add(url)
	}
}

// pollOne is the scheduler's per-URL poll: the same decision procedure
// as one sweep iteration, classified for the change-rate estimator.
func (s *Server) pollOne(ctx context.Context, url string) sched.Outcome {
	var stats SweepStats
	s.trackOne(ctx, url, &stats)
	switch {
	case stats.NewVersions > 0:
		return sched.Changed
	case stats.Errors > 0:
		return sched.Failed
	case stats.Skipped > 0 || stats.Canceled > 0:
		return sched.Skipped
	default:
		return sched.Unchanged
	}
}
