package breaker

import (
	"sync"
	"testing"
	"time"

	"aide/internal/obs"
	"aide/internal/simclock"
)

func newTestSet(cfg Config) (*Set, *simclock.Sim, *obs.Registry) {
	clock := simclock.New(time.Time{})
	reg := obs.NewRegistry()
	s := NewSet(cfg)
	s.Clock = clock
	s.Metrics = reg
	return s, clock, reg
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	s, _, reg := newTestSet(Config{FailureThreshold: 3, Cooldown: time.Minute})
	b := s.For("dead.example")
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("Allow() = false after %d failures", i)
		}
		b.Record(false)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v before threshold, want Closed", b.State())
	}
	b.Allow()
	b.Record(false) // third consecutive failure
	if b.State() != Open {
		t.Fatalf("state = %v after threshold, want Open", b.State())
	}
	if b.Allow() {
		t.Error("Allow() = true while open within cooldown")
	}
	if got := reg.Counter("breaker.trips").Value(); got != 1 {
		t.Errorf("breaker.trips = %d, want 1", got)
	}
	if got := reg.Counter("breaker.short_circuits").Value(); got != 1 {
		t.Errorf("breaker.short_circuits = %d, want 1", got)
	}
	if got := reg.Gauge("breaker.open_hosts").Value(); got != 1 {
		t.Errorf("breaker.open_hosts = %d, want 1", got)
	}
}

func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	s, _, _ := newTestSet(Config{FailureThreshold: 3})
	b := s.For("flaky.example")
	// Failures interleaved with successes never reach the threshold.
	for i := 0; i < 10; i++ {
		b.Allow()
		b.Record(false)
		b.Allow()
		b.Record(false)
		b.Allow()
		b.Record(true)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v, want Closed (successes reset the run)", b.State())
	}
}

// The half-open contract (ISSUE 3 satellite): after the cooldown a
// single probe is admitted, concurrent calls are still shed, a probe
// success closes the breaker, and a probe failure re-opens it with the
// full cooldown.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	cooldown := 2 * time.Minute
	s, clock, reg := newTestSet(Config{FailureThreshold: 1, Cooldown: cooldown, HalfOpenProbes: 1})
	b := s.For("recovering.example")

	b.Allow()
	b.Record(false) // trips immediately (threshold 1)
	if b.State() != Open {
		t.Fatalf("state = %v, want Open", b.State())
	}
	clock.Advance(cooldown - time.Second)
	if b.Allow() {
		t.Fatal("Allow() = true before cooldown elapsed")
	}
	clock.Advance(time.Second)

	// Exactly one probe is admitted.
	if !b.Allow() {
		t.Fatal("Allow() = false after cooldown; want one probe admitted")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want HalfOpen", b.State())
	}
	if b.Allow() {
		t.Fatal("second Allow() = true while probe in flight; probe budget is 1")
	}

	// Probe success closes the breaker.
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state after probe success = %v, want Closed", b.State())
	}
	if got := reg.Counter("breaker.recoveries").Value(); got != 1 {
		t.Errorf("breaker.recoveries = %d, want 1", got)
	}
	if got := reg.Gauge("breaker.open_hosts").Value(); got != 0 {
		t.Errorf("breaker.open_hosts = %d after recovery, want 0", got)
	}
}

func TestBreakerHalfOpenFailureReopensWithFullCooldown(t *testing.T) {
	cooldown := 5 * time.Minute
	s, clock, _ := newTestSet(Config{FailureThreshold: 1, Cooldown: cooldown})
	b := s.For("still-dead.example")

	b.Allow()
	b.Record(false)
	clock.Advance(cooldown)
	if !b.Allow() {
		t.Fatal("probe not admitted after cooldown")
	}
	b.Record(false) // probe fails: re-open
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want Open", b.State())
	}
	// The cooldown restarts in full: just short of it, still shedding.
	clock.Advance(cooldown - time.Second)
	if b.Allow() {
		t.Fatal("Allow() = true before the fresh cooldown elapsed")
	}
	clock.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe not admitted after the fresh cooldown")
	}
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state = %v, want Closed", b.State())
	}
}

func TestSetSnapshotSorted(t *testing.T) {
	s, _, _ := newTestSet(Config{FailureThreshold: 1})
	for _, h := range []string{"c.example", "a.example", "b.example"} {
		s.For(h)
	}
	b := s.For("b.example")
	b.Allow()
	b.Record(false)
	snap := s.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d hosts, want 3", len(snap))
	}
	for i, want := range []string{"a.example", "b.example", "c.example"} {
		if snap[i].Host != want {
			t.Errorf("snapshot[%d].Host = %q, want %q", i, snap[i].Host, want)
		}
	}
	if snap[1].State != "open" || snap[1].Trips != 1 {
		t.Errorf("b.example snapshot = %+v, want open with 1 trip", snap[1])
	}
	if snap[0].State != "closed" {
		t.Errorf("a.example snapshot = %+v, want closed", snap[0])
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	s, _, _ := newTestSet(Config{FailureThreshold: 3, Cooldown: time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := s.For("shared.example")
			for j := 0; j < 200; j++ {
				if b.Allow() {
					b.Record(j%3 == 0)
				}
			}
		}(i)
	}
	wg.Wait()
	// No assertion beyond the race detector and internal invariants.
	s.Snapshot()
}

func TestReadyHasNoSideEffects(t *testing.T) {
	s, clock, reg := newTestSet(Config{FailureThreshold: 1, Cooldown: time.Minute, HalfOpenProbes: 1})
	b := s.For("sched.example")
	if !b.Ready() {
		t.Fatal("Ready() = false while closed")
	}
	b.Allow()
	b.Record(false) // trip
	if b.Ready() {
		t.Error("Ready() = true while open within cooldown")
	}
	// Unlike Allow, Ready does not count short-circuits.
	if got := reg.Counter("breaker.short_circuits").Value(); got != 0 {
		t.Errorf("Ready() counted %d short-circuits, want 0", got)
	}
	clock.Advance(time.Minute)
	// Past cooldown: a probe would be admitted, so Ready is true — but
	// the state must still read Open (no transition happened).
	if !b.Ready() {
		t.Error("Ready() = false past cooldown")
	}
	if b.State() != Open {
		t.Errorf("State() = %v after Ready(), want Open (no side effects)", b.State())
	}
	// One in-flight probe exhausts the half-open budget.
	if !b.Allow() {
		t.Fatal("Allow() = false past cooldown")
	}
	if b.Ready() {
		t.Error("Ready() = true with probe budget exhausted")
	}
	b.Record(true)
	if !b.Ready() || b.State() != Closed {
		t.Errorf("Ready()=%v State()=%v after recovery, want true/Closed", b.Ready(), b.State())
	}
}
