// Package breaker implements per-host circuit breakers for AIDE's fetch
// path. Douglis & Ball note (§3.1) that hosts on the 1996 web were
// routinely unreachable, overloaded, or flapping; a sweep over a large
// hotlist must not pay a full connect-timeout-retry cycle for every URL
// on a host that is already known to be dead. A Breaker watches the
// outcomes of calls to one host and, after a run of host-level failures,
// trips: further calls fail fast without touching the wire until a
// cooldown passes, after which a bounded number of probe requests decide
// whether the host has recovered.
//
// States follow the classic three-state machine:
//
//	Closed   -> calls flow; consecutive failures are counted.
//	Open     -> calls are short-circuited until Cooldown elapses.
//	HalfOpen -> up to HalfOpenProbes in-flight probes are admitted;
//	            one success closes the breaker, one failure re-opens it
//	            with a full fresh cooldown.
//
// Time is read from an injected simclock.Clock, so breaker schedules are
// deterministic under simulated time, and transitions are exported to an
// obs.Registry (trips, recoveries, short-circuits, open-host gauge) for
// the /debug/health and /debug/metrics endpoints.
package breaker

import (
	"sort"
	"sync"
	"time"

	"aide/internal/obs"
	"aide/internal/simclock"
)

// State is a breaker's position in the closed/open/half-open machine.
type State int

// Breaker states.
const (
	// Closed: calls flow normally.
	Closed State = iota
	// Open: calls fail fast until the cooldown elapses.
	Open
	// HalfOpen: a bounded number of probes test the host.
	HalfOpen
)

// String names the state as /debug/health shows it.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Config tunes a breaker. The zero value gets conservative defaults.
type Config struct {
	// FailureThreshold is how many consecutive host-level failures trip
	// the breaker (default 5).
	FailureThreshold int
	// Cooldown is how long a tripped breaker stays open before admitting
	// probes (default 1 minute).
	Cooldown time.Duration
	// HalfOpenProbes bounds the number of simultaneous probe calls while
	// half-open (default 1).
	HalfOpenProbes int
}

func (c Config) threshold() int {
	if c.FailureThreshold > 0 {
		return c.FailureThreshold
	}
	return 5
}

func (c Config) cooldown() time.Duration {
	if c.Cooldown > 0 {
		return c.Cooldown
	}
	return time.Minute
}

func (c Config) probes() int {
	if c.HalfOpenProbes > 0 {
		return c.HalfOpenProbes
	}
	return 1
}

// Breaker is the circuit breaker for one host. Use a Set to manage one
// per host; the zero value is not usable.
type Breaker struct {
	host    string
	cfg     Config
	clock   simclock.Clock
	metrics *obs.Registry

	mu       sync.Mutex
	state    State
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probes   int       // in-flight probes while half-open
	trips    int64     // lifetime trip count
	shorted  int64     // lifetime short-circuited calls
}

// Allow reports whether a call to the host may proceed. While open it
// returns false (the call must fail fast) until the cooldown elapses,
// at which point the breaker turns half-open and admits up to
// HalfOpenProbes concurrent probes. Every Allow()==true call must be
// followed by exactly one Record with the call's outcome.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.clock.Now().Sub(b.openedAt) < b.cfg.cooldown() {
			b.shortCircuitLocked()
			return false
		}
		b.transitionLocked(HalfOpen)
		b.probes = 1
		b.metrics.Counter("breaker.probes").Inc()
		return true
	case HalfOpen:
		if b.probes >= b.cfg.probes() {
			b.shortCircuitLocked()
			return false
		}
		b.probes++
		b.metrics.Counter("breaker.probes").Inc()
		return true
	}
	return true
}

// Record reports the outcome of a call previously admitted by Allow.
// Success means the host answered at all (any response, even an error
// status below 500, proves the host is alive); failure means a
// host-level problem — transport error, timeout, or 5xx.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if success {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.threshold() {
			b.tripLocked()
		}
	case HalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if success {
			b.transitionLocked(Closed)
			b.failures = 0
			b.metrics.Counter("breaker.recoveries").Inc()
		} else {
			// The probe failed: back to open with a full fresh cooldown.
			b.tripLocked()
		}
	case Open:
		// A straggler admitted before the trip; its outcome is stale.
	}
}

// tripLocked moves to Open and restarts the cooldown; b.mu must be held.
func (b *Breaker) tripLocked() {
	b.transitionLocked(Open)
	b.openedAt = b.clock.Now()
	b.probes = 0
	b.trips++
	b.metrics.Counter("breaker.trips").Inc()
}

// shortCircuitLocked accounts one rejected call; b.mu must be held.
func (b *Breaker) shortCircuitLocked() {
	b.shorted++
	b.metrics.Counter("breaker.short_circuits").Inc()
}

// transitionLocked switches state, maintaining the open-host gauge and
// the transition log; b.mu must be held.
func (b *Breaker) transitionLocked(to State) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if from == Open {
		b.metrics.Gauge("breaker.open_hosts").Add(-1)
	}
	if to == Open {
		b.metrics.Gauge("breaker.open_hosts").Add(1)
	}
	obs.Logger().Info("breaker transition", "host", b.host, "from", from.String(), "to", to.String())
}

// Ready reports whether a call admitted right now would be allowed,
// without the side effects of Allow: no state transition, no probe
// slot consumed, no short-circuit counted. An open breaker past its
// cooldown reads ready (a probe would be admitted), which is what
// schedulers need — polling State alone would defer such a host
// forever, since State stays Open until an Allow promotes it.
func (b *Breaker) Ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		return b.clock.Now().Sub(b.openedAt) >= b.cfg.cooldown()
	case HalfOpen:
		return b.probes < b.cfg.probes()
	}
	return true
}

// State returns the breaker's current state without side effects: an
// open breaker past its cooldown still reads Open until a call's Allow
// promotes it to half-open.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// HostState is one host's breaker status, as served by /debug/health.
type HostState struct {
	// Host is the host[:port] the breaker guards.
	Host string `json:"host"`
	// State is "closed", "open", or "half-open".
	State string `json:"state"`
	// ConsecutiveFailures is the current failure run while closed.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// Trips is the lifetime number of times the breaker opened.
	Trips int64 `json:"trips"`
	// ShortCircuits is the lifetime number of calls rejected fast.
	ShortCircuits int64 `json:"short_circuits"`
	// OpenedAt is when the breaker last tripped (omitted if never).
	OpenedAt time.Time `json:"opened_at,omitzero"`
}

// Snapshot captures one breaker's state for health reporting — the
// single-breaker form of Set.Snapshot, for callers (the snapshot
// replicator's per-replica health) that track breakers individually.
func (b *Breaker) Snapshot() HostState {
	return b.snapshot()
}

// snapshot captures the breaker's state for health reporting.
func (b *Breaker) snapshot() HostState {
	b.mu.Lock()
	defer b.mu.Unlock()
	hs := HostState{
		Host:                b.host,
		State:               b.state.String(),
		ConsecutiveFailures: b.failures,
		Trips:               b.trips,
		ShortCircuits:       b.shorted,
	}
	if b.trips > 0 {
		hs.OpenedAt = b.openedAt
	}
	return hs
}

// Set manages one Breaker per host, sharing a config, clock, and
// metrics registry. The zero value is usable; configure before first
// use (fields are read when each breaker is created).
type Set struct {
	// Config applies to every breaker created by For.
	Config Config
	// Clock paces cooldowns; wall clock when nil.
	Clock simclock.Clock
	// Metrics receives trips/recoveries/short-circuit counters and the
	// open-host gauge; obs.Default when nil.
	Metrics *obs.Registry

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewSet returns a Set with the given config.
func NewSet(cfg Config) *Set {
	return &Set{Config: cfg}
}

// For returns (creating on first use) the breaker for host.
func (s *Set) For(host string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]*Breaker)
	}
	b, ok := s.m[host]
	if !ok {
		clock := s.Clock
		if clock == nil {
			clock = simclock.Wall{}
		}
		metrics := s.Metrics
		if metrics == nil {
			metrics = obs.Default
		}
		b = &Breaker{host: host, cfg: s.Config, clock: clock, metrics: metrics}
		s.m[host] = b
	}
	return b
}

// Snapshot lists every breaker's state, sorted by host — the payload of
// the /debug/health endpoint.
func (s *Set) Snapshot() []HostState {
	s.mu.Lock()
	breakers := make([]*Breaker, 0, len(s.m))
	for _, b := range s.m {
		breakers = append(breakers, b)
	}
	s.mu.Unlock()
	out := make([]HostState, 0, len(breakers))
	for _, b := range breakers {
		out = append(out, b.snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}
