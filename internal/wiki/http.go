package wiki

import (
	"errors"
	"fmt"
	"html"
	"io"
	"net/http"
	"strings"
	"time"

	"aide/internal/snapshot"
)

// Server is WebWeaver's HTTP face: view, edit, RecentChanges, and the
// personalised diff and history views. The reader identity travels in
// the user query parameter, as in the rest of AIDE.
type Server struct {
	// Wiki is the underlying store.
	Wiki *Wiki
	// FrontPage is the document shown at "/". Defaults to "FrontPage".
	FrontPage string
}

// NewServer wraps a wiki.
func NewServer(w *Wiki) *Server { return &Server{Wiki: w, FrontPage: "FrontPage"} }

// Handler returns the wiki's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleFront)
	mux.HandleFunc("/view", s.handleView)
	mux.HandleFunc("/edit", s.handleEdit)
	mux.HandleFunc("/recent", s.handleRecent)
	mux.HandleFunc("/diff", s.handleDiff)
	mux.HandleFunc("/history", s.handleHistory)
	return mux
}

func (s *Server) handleFront(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	q := r.URL.Query()
	http.Redirect(w, r, "/view?page="+s.FrontPage+"&user="+q.Get("user"), http.StatusFound)
}

// handleView renders a page with WikiWord links, records the read, and
// appends the §8.1-style unobtrusive footer linking to the history.
func (s *Server) handleView(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	page, user := q.Get("page"), q.Get("user")
	if page == "" {
		http.Error(w, "need a page parameter", http.StatusBadRequest)
		return
	}
	body, rev, err := s.Wiki.Read(user, page)
	if errors.Is(err, ErrNoPage) {
		// A wiki invites you to create what does not exist yet.
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprintf(w, "<HTML><BODY><H1>%s</H1><P>This page does not exist yet. "+
			"<A HREF=\"/edit?page=%s&user=%s\">Create it</A>.</P></BODY></HTML>\n",
			html.EscapeString(page), page, user)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html")
	fmt.Fprint(w, LinkWikiWords(body))
	revs, _, _ := s.Wiki.History("", page)
	var when string
	if len(revs) > 0 {
		when = revs[0].Date.UTC().Format(time.ANSIC)
	}
	fmt.Fprintf(w, "<HR><I>Revision %s, last modified <A HREF=\"/history?page=%s&user=%s\">%s</A>. "+
		"[<A HREF=\"/edit?page=%s&user=%s\">Edit</A>] [<A HREF=\"/diff?page=%s&user=%s\">What changed?</A>] "+
		"[<A HREF=\"/recent?user=%s\">RecentChanges</A>]</I>\n",
		rev, page, user, when, page, user, page, user, user)
}

// handleEdit shows the edit form (GET) or stores a revision (POST). The
// form carries the revision the edit is based on; a save against a moved
// head is rejected with a conflict page showing what changed meanwhile.
func (s *Server) handleEdit(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		if err := r.ParseForm(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		page, user := r.Form.Get("page"), r.Form.Get("user")
		if page == "" || user == "" {
			http.Error(w, "need page and user", http.StatusBadRequest)
			return
		}
		body, base := r.Form.Get("body"), r.Form.Get("base")
		rev, err := s.Wiki.EditFrom(user, page, body, base)
		if errors.Is(err, ErrEditConflict) {
			s.renderConflict(w, page, user, body, base, err)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprintf(w, "<HTML><BODY>Saved %s as revision %s. "+
			"<A HREF=\"/view?page=%s&user=%s\">View it</A>.</BODY></HTML>\n",
			html.EscapeString(page), rev, page, user)
		return
	}
	q := r.URL.Query()
	page, user := q.Get("page"), q.Get("user")
	if page == "" {
		http.Error(w, "need a page parameter", http.StatusBadRequest)
		return
	}
	current, _ := s.Wiki.ReadAt(page, "")
	base := ""
	if revs, _, err := s.Wiki.History("", page); err == nil && len(revs) > 0 {
		base = revs[0].Num
	}
	w.Header().Set("Content-Type", "text/html")
	writeEditForm(w, page, user, current, base, "")
}

// renderConflict shows the §1-style resolution page: HtmlDiff of what
// changed underneath the author, plus their text ready to resubmit
// against the new head.
func (s *Server) renderConflict(w http.ResponseWriter, page, user, body, base string, cause error) {
	w.Header().Set("Content-Type", "text/html")
	w.WriteHeader(http.StatusConflict)
	fmt.Fprintf(w, "<HTML><BODY><H1>Edit conflict on %s</H1>\n<P>%s.</P>\n",
		html.EscapeString(page), html.EscapeString(cause.Error()))
	if base != "" {
		if d, err := s.Wiki.ConflictDiff(page, base); err == nil {
			fmt.Fprintf(w, "<H2>What changed while you were editing</H2>\n%s\n", d.HTML)
		}
	}
	newBase := ""
	if revs, _, err := s.Wiki.History("", page); err == nil && len(revs) > 0 {
		newBase = revs[0].Num
	}
	fmt.Fprint(w, "<H2>Your text (resubmit to apply it over the new head)</H2>\n")
	writeEditForm(w, page, user, body, newBase, "Save over new head")
	fmt.Fprint(w, "</BODY></HTML>\n")
}

// writeEditForm emits the shared edit form.
func writeEditForm(w io.Writer, page, user, body, base, submit string) {
	if submit == "" {
		submit = "Save"
	}
	fmt.Fprintf(w, `<FORM ACTION="/edit" METHOD="POST">
<INPUT TYPE=HIDDEN NAME="page" VALUE="%s">
<INPUT TYPE=HIDDEN NAME="base" VALUE="%s">
Your name: <INPUT NAME="user" VALUE="%s"><BR>
<TEXTAREA NAME="body" ROWS=20 COLS=80>%s</TEXTAREA><BR>
<INPUT TYPE=SUBMIT VALUE="%s">
</FORM>
`, html.EscapeString(page), html.EscapeString(base), html.EscapeString(user),
		html.EscapeString(body), html.EscapeString(submit))
}

// handleRecent renders RecentChanges, marking the rows the reader has
// not caught up with.
func (s *Server) handleRecent(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	changes, err := s.Wiki.RecentChanges()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	unreadSet := map[string]bool{}
	if user != "" {
		unread, err := s.Wiki.UnreadChanges(user)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		for _, c := range unread {
			unreadSet[c.Page] = true
		}
	}
	w.Header().Set("Content-Type", "text/html")
	var sb strings.Builder
	sb.WriteString("<HTML><HEAD><TITLE>RecentChanges</TITLE></HEAD><BODY>\n<H1>RecentChanges</H1>\n<UL>\n")
	for _, c := range changes {
		mark := ""
		if unreadSet[c.Page] {
			mark = " <B>(new to you)</B>"
		}
		fmt.Fprintf(&sb, "<LI><A HREF=\"/view?page=%s&user=%s\">%s</A> &mdash; %s by %s (rev %s)%s "+
			"[<A HREF=\"/diff?page=%s&user=%s\">what changed?</A>]\n",
			c.Page, user, c.Page, c.Date.UTC().Format(time.ANSIC),
			html.EscapeString(c.Author), c.Rev, mark, c.Page, user)
	}
	sb.WriteString("</UL>\n</BODY></HTML>\n")
	fmt.Fprint(w, sb.String())
}

// handleDiff renders the reader's personalised HtmlDiff.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	page, user := q.Get("page"), q.Get("user")
	if page == "" || user == "" {
		http.Error(w, "need page and user parameters", http.StatusBadRequest)
		return
	}
	d, err := s.Wiki.DiffForReader(user, page)
	switch {
	case errors.Is(err, snapshot.ErrNeverSaved):
		http.Redirect(w, r, "/view?page="+page+"&user="+user, http.StatusFound)
		return
	case errors.Is(err, ErrNoPage):
		http.NotFound(w, r)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html")
	fmt.Fprint(w, d.HTML)
	fmt.Fprintf(w, "<HR><I>Comparing revision %s (your last read) with %s. "+
		"<A HREF=\"/view?page=%s&user=%s\">Catch up</A>.</I>\n", d.OldRev, d.NewRev, page, user)
}

// handleHistory lists a page's revisions with view/diff links.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	page, user := q.Get("page"), q.Get("user")
	if page == "" {
		http.Error(w, "need a page parameter", http.StatusBadRequest)
		return
	}
	revs, seen, err := s.Wiki.History(user, page)
	if errors.Is(err, ErrNoPage) {
		http.NotFound(w, r)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html")
	var sb strings.Builder
	fmt.Fprintf(&sb, "<HTML><BODY><H1>History of %s</H1>\n<UL>\n", html.EscapeString(page))
	for _, rev := range revs {
		mark := ""
		if seen[rev.Num] {
			mark = " <B>(seen by you)</B>"
		}
		fmt.Fprintf(&sb, "<LI>%s &mdash; %s by %s%s\n",
			rev.Num, rev.Date.UTC().Format(time.ANSIC), html.EscapeString(rev.Author), mark)
	}
	sb.WriteString("</UL>\n</BODY></HTML>\n")
	fmt.Fprint(w, sb.String())
}
