// Package wiki implements WebWeaver, the collaborative system of the
// paper's §1: "Within AT&T, a clone of WikiWikiWeb, called WebWeaver,
// stores its own version archive and uses HtmlDiff to show users the
// differences from earlier versions of a page."
//
// Pages are editable documents whose every revision is checked into the
// snapshot facility's archive. A RecentChanges page sorts documents by
// modification date, and — the AIDE improvement over a plain wiki —
// each reader gets a personalised HtmlDiff against the version *they*
// last read, catching the §1 failure mode: "content can be modified
// anywhere on the page, and those changes may be too subtle to notice."
package wiki

import (
	"context"
	"errors"
	"fmt"
	"regexp"
	"sort"
	"strings"
	"time"

	"aide/internal/htmldoc"
	"aide/internal/rcs"
	"aide/internal/simclock"
	"aide/internal/snapshot"
)

// ErrNoPage is returned for pages that have never been written.
var ErrNoPage = errors.New("wiki: no such page")

// pageScheme namespaces wiki documents inside the snapshot repository.
const pageScheme = "wiki:"

// wikiWord matches WikiWikiWeb-style page names: two or more capitalised
// runs, e.g. PatternLanguage or FrontPage.
var wikiWord = regexp.MustCompile(`^[A-Z][a-z0-9]+(?:[A-Z][a-z0-9]+)+$`)

// IsPageName reports whether name is a legal wiki page name.
func IsPageName(name string) bool { return wikiWord.MatchString(name) }

// Change is one row of RecentChanges.
type Change struct {
	// Page is the document name.
	Page string
	// Rev is the newest revision.
	Rev string
	// Author made the newest revision.
	Author string
	// Date is the newest revision's check-in time.
	Date time.Time
	// Revisions is the total number of stored versions.
	Revisions int
}

// Wiki is a WebWeaver instance over a snapshot facility.
type Wiki struct {
	fac   *snapshot.Facility
	clock simclock.Clock
}

// New returns a wiki storing its archive in fac.
func New(fac *snapshot.Facility, clock simclock.Clock) *Wiki {
	if clock == nil {
		clock = simclock.Wall{}
	}
	return &Wiki{fac: fac, clock: clock}
}

// pageURL is the document's key in the snapshot repository.
func pageURL(name string) string { return pageScheme + name }

// ErrEditConflict is returned when a save is based on a revision that is
// no longer the head: someone else edited the page meanwhile.
var ErrEditConflict = errors.New("wiki: edit conflict")

// Edit stores a new revision of page authored by author, and records
// that the author has seen it. Writing identical content is a no-op.
// Edit is last-write-wins; use EditFrom for conflict detection.
func (w *Wiki) Edit(author, page, body string) (rev string, err error) {
	if !IsPageName(page) {
		return "", fmt.Errorf("wiki: %q is not a WikiWord page name", page)
	}
	// Wiki check-ins are local disk writes; entity tracking (the only
	// thing RememberContent's ctx bounds) is never enabled on a wiki's
	// facility, so Background is correct here.
	res, err := w.fac.RememberContent(context.Background(), author, pageURL(page), body)
	if err != nil {
		return "", err
	}
	return res.Rev, nil
}

// EditFrom stores a new revision only if baseRev is still the head —
// the wiki's optimistic concurrency control. A concurrent editor's save
// surfaces as ErrEditConflict, and the caller can show the author what
// changed underneath them (HtmlDiff between baseRev and the head). An
// empty baseRev asserts the page is being created fresh.
func (w *Wiki) EditFrom(author, page, body, baseRev string) (rev string, err error) {
	if !IsPageName(page) {
		return "", fmt.Errorf("wiki: %q is not a WikiWord page name", page)
	}
	revs, _, err := w.fac.History("", pageURL(page))
	switch {
	case errors.Is(err, rcs.ErrNoArchive):
		if baseRev != "" {
			return "", fmt.Errorf("%w: page vanished (base %s)", ErrEditConflict, baseRev)
		}
	case err != nil:
		return "", err
	default:
		if revs[0].Num != baseRev {
			return "", fmt.Errorf("%w: head is %s, your edit was based on %s",
				ErrEditConflict, revs[0].Num, orNone(baseRev))
		}
	}
	return w.Edit(author, page, body)
}

func orNone(rev string) string {
	if rev == "" {
		return "a new page"
	}
	return rev
}

// ConflictDiff renders what changed between an editor's base revision
// and the current head, for the conflict page.
func (w *Wiki) ConflictDiff(page, baseRev string) (snapshot.DiffResult, error) {
	revs, _, err := w.fac.History("", pageURL(page))
	if err != nil {
		return snapshot.DiffResult{}, err
	}
	return w.fac.DiffRevs(pageURL(page), baseRev, revs[0].Num)
}

// Read returns the current text and revision of page, and records that
// reader (when non-empty) has now seen it.
func (w *Wiki) Read(reader, page string) (body, rev string, err error) {
	body, err = w.fac.Checkout(pageURL(page), "")
	if err != nil {
		if errors.Is(err, rcs.ErrNoArchive) {
			return "", "", fmt.Errorf("%w: %s", ErrNoPage, page)
		}
		return "", "", err
	}
	revs, _, err := w.fac.History("", pageURL(page))
	if err != nil {
		return "", "", err
	}
	rev = revs[0].Num
	if reader != "" {
		if _, err := w.fac.RememberContent(context.Background(), reader, pageURL(page), body); err != nil {
			return "", "", err
		}
	}
	return body, rev, nil
}

// ReadAt returns the text of page as of a revision ("" = head) without
// updating any reader state.
func (w *Wiki) ReadAt(page, rev string) (string, error) {
	body, err := w.fac.Checkout(pageURL(page), rev)
	if errors.Is(err, rcs.ErrNoArchive) {
		return "", fmt.Errorf("%w: %s", ErrNoPage, page)
	}
	return body, err
}

// Pages lists all documents, sorted by name.
func (w *Wiki) Pages() ([]string, error) {
	urls, err := w.fac.ArchivedURLs()
	if err != nil {
		return nil, err
	}
	var names []string
	for _, u := range urls {
		if name, ok := strings.CutPrefix(u, pageScheme); ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// RecentChanges lists documents newest-change-first, the wiki's shared
// activity view.
func (w *Wiki) RecentChanges() ([]Change, error) {
	names, err := w.Pages()
	if err != nil {
		return nil, err
	}
	changes := make([]Change, 0, len(names))
	for _, name := range names {
		revs, _, err := w.fac.History("", pageURL(name))
		if err != nil {
			return nil, err
		}
		head := revs[0]
		changes = append(changes, Change{
			Page: name, Rev: head.Num, Author: head.Author,
			Date: head.Date, Revisions: len(revs),
		})
	}
	sort.SliceStable(changes, func(i, j int) bool {
		if !changes[i].Date.Equal(changes[j].Date) {
			return changes[i].Date.After(changes[j].Date)
		}
		return changes[i].Page < changes[j].Page
	})
	return changes, nil
}

// UnreadChanges reports, for each page, whether reader is behind its
// head revision — the per-reader view AIDE adds on top of a plain
// RecentChanges.
func (w *Wiki) UnreadChanges(reader string) ([]Change, error) {
	all, err := w.RecentChanges()
	if err != nil {
		return nil, err
	}
	var out []Change
	for _, c := range all {
		_, seen, err := w.fac.History(reader, pageURL(c.Page))
		if err != nil {
			return nil, err
		}
		if !seen[c.Rev] {
			out = append(out, c)
		}
	}
	return out, nil
}

// DiffForReader renders the HtmlDiff between the version reader last saw
// and the current page. ErrNeverSaved surfaces for readers who have
// never opened the page.
func (w *Wiki) DiffForReader(reader, page string) (snapshot.DiffResult, error) {
	revs, seen, err := w.fac.History(reader, pageURL(page))
	if err != nil {
		if errors.Is(err, rcs.ErrNoArchive) {
			return snapshot.DiffResult{}, fmt.Errorf("%w: %s", ErrNoPage, page)
		}
		return snapshot.DiffResult{}, err
	}
	var lastSeen string
	for _, r := range revs { // newest first
		if seen[r.Num] {
			lastSeen = r.Num
			break
		}
	}
	if lastSeen == "" {
		return snapshot.DiffResult{}, snapshot.ErrNeverSaved
	}
	return w.fac.DiffRevs(pageURL(page), lastSeen, revs[0].Num)
}

// History exposes a page's revision log (newest first) and the reader's
// seen set.
func (w *Wiki) History(reader, page string) ([]rcs.Revision, map[string]bool, error) {
	revs, seen, err := w.fac.History(reader, pageURL(page))
	if errors.Is(err, rcs.ErrNoArchive) {
		return nil, nil, fmt.Errorf("%w: %s", ErrNoPage, page)
	}
	return revs, seen, err
}

// LinkWikiWords rewrites bare WikiWord words in body into page links
// (<A HREF="/view?page=Name">Name</A>), skipping words already inside
// anchors. This is the render-time half of WikiWikiWeb's linking.
func LinkWikiWords(body string) string {
	toks := htmldoc.Tokenize(body)
	var sb strings.Builder
	inAnchor := 0
	for _, tok := range toks {
		text := renderToken(tok, &inAnchor)
		sb.WriteString(text)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func renderToken(tok htmldoc.Token, inAnchor *int) string {
	sep := " "
	if tok.Pre {
		sep = "\n"
	}
	var sb strings.Builder
	for i, it := range tok.Items {
		if i > 0 {
			sb.WriteString(sep)
		}
		switch {
		case it.Kind == htmldoc.Markup && it.Name == "A":
			*inAnchor++
			sb.WriteString(it.Raw)
		case it.Kind == htmldoc.Markup && it.Name == "/A":
			if *inAnchor > 0 {
				*inAnchor--
			}
			sb.WriteString(it.Raw)
		case it.Kind == htmldoc.Word && *inAnchor == 0 && IsPageName(trimPunct(it.Raw)):
			name := trimPunct(it.Raw)
			sb.WriteString(strings.Replace(it.Raw, name,
				fmt.Sprintf("<A HREF=\"/view?page=%s\">%s</A>", name, name), 1))
		default:
			sb.WriteString(it.Raw)
		}
	}
	return sb.String()
}

// trimPunct strips trailing sentence punctuation from a word.
func trimPunct(w string) string {
	return strings.TrimRight(w, ".,;:!?)\"'")
}
