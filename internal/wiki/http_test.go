package wiki

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

func httpRig(t *testing.T) (*rig, *httptest.Server) {
	t.Helper()
	r := newRig(t)
	ts := httptest.NewServer(NewServer(r.w).Handler())
	t.Cleanup(ts.Close)
	return r, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestHTTPEditViewFlow(t *testing.T) {
	_, ts := httpRig(t)

	// Missing page invites creation.
	code, body := get(t, ts.URL+"/view?page=FrontPage&user=ward")
	if code != 200 || !strings.Contains(body, "does not exist yet") {
		t.Fatalf("missing page view: %d\n%s", code, body)
	}

	// Create it through the form POST.
	resp, err := http.PostForm(ts.URL+"/edit", url.Values{
		"page": {"FrontPage"},
		"user": {"ward"},
		"body": {"<P>Welcome. See PatternLanguage for more.</P>"},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(data), "revision 1.1") {
		t.Fatalf("edit post: %d\n%s", resp.StatusCode, data)
	}

	// View renders WikiWord links and the unobtrusive footer.
	code, body = get(t, ts.URL+"/view?page=FrontPage&user=fred")
	if code != 200 {
		t.Fatalf("view code = %d", code)
	}
	for _, want := range []string{
		`<A HREF="/view?page=PatternLanguage">PatternLanguage</A>`,
		"Revision 1.1, last modified",
		"/history?page=FrontPage",
		"[<A HREF=\"/edit?page=FrontPage&user=fred\">Edit</A>]",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("view missing %q:\n%s", want, body)
		}
	}
}

func TestHTTPRecentAndPersonalDiff(t *testing.T) {
	r, ts := httpRig(t)
	r.w.Edit("ward", "FrontPage", "<P>original page text here.</P>")
	// Fred reads it over HTTP (recording his read).
	get(t, ts.URL+"/view?page=FrontPage&user=fred")
	// Ward revises it.
	r.clock.Advance(1000000000)
	r.w.Edit("ward", "FrontPage", "<P>revised page text here.</P>")

	// RecentChanges marks the page new-to-fred.
	code, body := get(t, ts.URL+"/recent?user=fred")
	if code != 200 || !strings.Contains(body, "(new to you)") {
		t.Fatalf("recent: %d\n%s", code, body)
	}
	// Fred's diff shows the word-level change.
	code, body = get(t, ts.URL+"/diff?page=FrontPage&user=fred")
	if code != 200 {
		t.Fatalf("diff code = %d", code)
	}
	if !strings.Contains(body, "<STRIKE>original</STRIKE>") ||
		!strings.Contains(body, "<STRONG><I>revised</I></STRONG>") {
		t.Errorf("diff content:\n%s", body)
	}
	if !strings.Contains(body, "your last read") {
		t.Errorf("diff footer missing:\n%s", body)
	}
}

func TestHTTPDiffNeverReadRedirects(t *testing.T) {
	r, ts := httpRig(t)
	r.w.Edit("ward", "FrontPage", "<P>x.</P>")
	// A reader who never opened the page is redirected to the view.
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Get(ts.URL + "/diff?page=FrontPage&user=stranger")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 302 {
		t.Fatalf("code = %d, want 302", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.Contains(loc, "/view?page=FrontPage") {
		t.Errorf("redirect location = %q", loc)
	}
}

func TestHTTPHistory(t *testing.T) {
	r, ts := httpRig(t)
	r.w.Edit("ward", "FrontPage", "<P>v1.</P>")
	r.clock.Advance(1000000000)
	r.w.Edit("tom", "FrontPage", "<P>v2.</P>")
	code, body := get(t, ts.URL+"/history?page=FrontPage&user=tom")
	if code != 200 {
		t.Fatalf("history code = %d", code)
	}
	for _, want := range []string{"1.1", "1.2", "by ward", "by tom", "(seen by you)"} {
		if !strings.Contains(body, want) {
			t.Errorf("history missing %q:\n%s", want, body)
		}
	}
}

func TestHTTPFrontRedirectAndValidation(t *testing.T) {
	_, ts := httpRig(t)
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Get(ts.URL + "/?user=fred")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 302 || !strings.Contains(resp.Header.Get("Location"), "page=FrontPage") {
		t.Fatalf("front redirect: %d %q", resp.StatusCode, resp.Header.Get("Location"))
	}
	code, _ := get(t, ts.URL+"/view")
	if code != 400 {
		t.Errorf("view without page: %d", code)
	}
	code, _ = get(t, ts.URL+"/history?page=NoSuchPage")
	if code != 404 {
		t.Errorf("history of missing page: %d", code)
	}
	// Bad page name on POST.
	resp2, err := http.PostForm(ts.URL+"/edit", url.Values{
		"page": {"lowercase"}, "user": {"u"}, "body": {"x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 400 {
		t.Errorf("bad page name post: %d", resp2.StatusCode)
	}
}

func TestHTTPEditConflictFlow(t *testing.T) {
	r, ts := httpRig(t)
	r.w.Edit("ward", "SharedPage", "<P>original.</P>")

	// Two editors load the form (base = 1.1 in both).
	code, form := get(t, ts.URL+"/edit?page=SharedPage&user=fred")
	if code != 200 || !strings.Contains(form, `NAME="base" VALUE="1.1"`) {
		t.Fatalf("edit form: %d\n%s", code, form)
	}
	// Fred saves.
	resp, err := http.PostForm(ts.URL+"/edit", url.Values{
		"page": {"SharedPage"}, "user": {"fred"},
		"body": {"<P>fred version.</P>"}, "base": {"1.1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("fred save code = %d", resp.StatusCode)
	}
	// Tom saves from the stale base and gets the conflict page.
	resp, err = http.PostForm(ts.URL+"/edit", url.Values{
		"page": {"SharedPage"}, "user": {"tom"},
		"body": {"<P>tom version.</P>"}, "base": {"1.1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("tom save code = %d, want 409", resp.StatusCode)
	}
	body := string(data)
	for _, want := range []string{
		"Edit conflict on SharedPage",
		"What changed while you were editing",
		"fred",                    // the intervening change is visible
		`NAME="base" VALUE="1.2"`, // resubmit form targets the new head
		"tom version.",            // his text is preserved
	} {
		if !strings.Contains(body, want) {
			t.Errorf("conflict page missing %q:\n%s", want, body)
		}
	}
	// Resubmitting against the new head succeeds.
	resp, err = http.PostForm(ts.URL+"/edit", url.Values{
		"page": {"SharedPage"}, "user": {"tom"},
		"body": {"<P>tom version.</P>"}, "base": {"1.2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(data), "revision 1.3") {
		t.Fatalf("resubmit: %d\n%s", resp.StatusCode, data)
	}
}
