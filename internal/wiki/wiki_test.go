package wiki

import (
	"errors"
	"strings"
	"testing"
	"time"

	"aide/internal/simclock"
	"aide/internal/snapshot"
)

const (
	ward = "ward"
	fred = "fred"
	tom  = "tom"
)

type rig struct {
	clock *simclock.Sim
	w     *Wiki
}

func newRig(t *testing.T) *rig {
	t.Helper()
	clock := simclock.New(time.Time{})
	fac, err := snapshot.New(t.TempDir(), nil, clock)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{clock: clock, w: New(fac, clock)}
}

func TestEditReadRoundTrip(t *testing.T) {
	r := newRig(t)
	rev, err := r.w.Edit(ward, "FrontPage", "<P>welcome to the wiki.</P>")
	if err != nil || rev != "1.1" {
		t.Fatalf("edit = (%q,%v)", rev, err)
	}
	body, rev, err := r.w.Read(fred, "FrontPage")
	if err != nil || rev != "1.1" || !strings.Contains(body, "welcome") {
		t.Fatalf("read = (%q,%q,%v)", body, rev, err)
	}
	// Identical re-save is a no-op revision-wise.
	rev, err = r.w.Edit(tom, "FrontPage", "<P>welcome to the wiki.</P>")
	if err != nil || rev != "1.1" {
		t.Fatalf("no-op edit = (%q,%v)", rev, err)
	}
}

func TestPageNameValidation(t *testing.T) {
	r := newRig(t)
	for _, bad := range []string{"frontpage", "Front", "FRONT", "Front Page", "X", ""} {
		if _, err := r.w.Edit(ward, bad, "x"); err == nil {
			t.Errorf("bad page name %q accepted", bad)
		}
	}
	for _, good := range []string{"FrontPage", "PatternLanguage", "WikiWikiWeb", "Rfc2068Notes"} {
		if !IsPageName(good) {
			t.Errorf("good page name %q rejected", good)
		}
	}
}

func TestMissingPage(t *testing.T) {
	r := newRig(t)
	if _, _, err := r.w.Read(fred, "NoSuchPage"); !errors.Is(err, ErrNoPage) {
		t.Errorf("read missing page: %v", err)
	}
	if _, err := r.w.DiffForReader(fred, "NoSuchPage"); !errors.Is(err, ErrNoPage) {
		t.Errorf("diff missing page: %v", err)
	}
}

func TestRecentChangesOrder(t *testing.T) {
	r := newRig(t)
	r.w.Edit(ward, "FirstPage", "<P>one.</P>")
	r.clock.Advance(time.Hour)
	r.w.Edit(ward, "SecondPage", "<P>two.</P>")
	r.clock.Advance(time.Hour)
	r.w.Edit(tom, "FirstPage", "<P>one revised.</P>")

	changes, err := r.w.RecentChanges()
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 2 {
		t.Fatalf("changes = %+v", changes)
	}
	if changes[0].Page != "FirstPage" || changes[0].Author != tom || changes[0].Rev != "1.2" {
		t.Errorf("newest change = %+v", changes[0])
	}
	if changes[0].Revisions != 2 || changes[1].Revisions != 1 {
		t.Errorf("revision counts = %+v", changes)
	}
}

func TestPersonalisedDiffCatchesSubtleEdit(t *testing.T) {
	r := newRig(t)
	r.w.Edit(ward, "PatternLanguage",
		"<P>A pattern language is a network of patterns that call upon one another.</P>")
	// Fred reads it.
	if _, _, err := r.w.Read(fred, "PatternLanguage"); err != nil {
		t.Fatal(err)
	}
	// Tom makes a one-word mid-page edit.
	r.clock.Advance(time.Hour)
	r.w.Edit(tom, "PatternLanguage",
		"<P>A pattern language is a network of patterns that build upon one another.</P>")

	d, err := r.w.DiffForReader(fred, "PatternLanguage")
	if err != nil {
		t.Fatal(err)
	}
	if d.OldRev != "1.1" || d.NewRev != "1.2" {
		t.Fatalf("diff revs = %+v", d)
	}
	if !strings.Contains(d.HTML, "<STRIKE>call</STRIKE>") ||
		!strings.Contains(d.HTML, "<STRONG><I>build</I></STRONG>") {
		t.Errorf("subtle edit not highlighted:\n%s", d.HTML)
	}
	// Tom, who made the edit, has seen the head: his unread set is empty.
	unread, err := r.w.UnreadChanges(tom)
	if err != nil {
		t.Fatal(err)
	}
	if len(unread) != 0 {
		t.Errorf("editor has unread changes: %+v", unread)
	}
	// Fred is behind on the page he read before the edit.
	unread, _ = r.w.UnreadChanges(fred)
	if len(unread) != 1 || unread[0].Page != "PatternLanguage" {
		t.Errorf("fred unread = %+v", unread)
	}
	// After catching up (a fresh read), the diff is empty-handed and the
	// unread set clears.
	r.w.Read(fred, "PatternLanguage")
	if unread, _ = r.w.UnreadChanges(fred); len(unread) != 0 {
		t.Errorf("fred still behind after reading: %+v", unread)
	}
}

func TestDiffForReaderNeverRead(t *testing.T) {
	r := newRig(t)
	r.w.Edit(ward, "SomePage", "<P>content.</P>")
	if _, err := r.w.DiffForReader(fred, "SomePage"); !errors.Is(err, snapshot.ErrNeverSaved) {
		t.Errorf("diff for stranger: %v", err)
	}
}

func TestHistoryAndReadAt(t *testing.T) {
	r := newRig(t)
	r.w.Edit(ward, "GrowingPage", "<P>v1.</P>")
	r.clock.Advance(time.Hour)
	r.w.Edit(tom, "GrowingPage", "<P>v2.</P>")

	revs, seen, err := r.w.History(ward, "GrowingPage")
	if err != nil || len(revs) != 2 {
		t.Fatalf("history: %d revs, %v", len(revs), err)
	}
	if !seen["1.1"] || seen["1.2"] {
		t.Errorf("ward seen = %v", seen)
	}
	old, err := r.w.ReadAt("GrowingPage", "1.1")
	if err != nil || !strings.Contains(old, "v1") {
		t.Errorf("ReadAt 1.1 = (%q,%v)", old, err)
	}
}

func TestLinkWikiWords(t *testing.T) {
	body := `<P>See PatternLanguage and the FrontPage. Not aWikiWord, not UPPERCASE.
Already linked: <A HREF="/x">InsideAnchor stays</A>. End with WikiWord.</P>`
	out := LinkWikiWords(body)
	for _, want := range []string{
		`<A HREF="/view?page=PatternLanguage">PatternLanguage</A>`,
		`<A HREF="/view?page=FrontPage">FrontPage</A>.`,
		`<A HREF="/view?page=WikiWord">WikiWord</A>.`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, `page=InsideAnchor`) {
		t.Errorf("word inside anchor was linked:\n%s", out)
	}
	if strings.Contains(out, "page=UPPERCASE") || strings.Contains(out, "page=aWikiWord") {
		t.Errorf("non-WikiWord linked:\n%s", out)
	}
}

func TestEditFromConflict(t *testing.T) {
	r := newRig(t)
	// Create via EditFrom with empty base (fresh page).
	rev, err := r.w.EditFrom(ward, "SharedPage", "<P>draft one.</P>", "")
	if err != nil || rev != "1.1" {
		t.Fatalf("create = (%q,%v)", rev, err)
	}
	// Fred and Tom both start editing from 1.1; Fred saves first.
	r.clock.Advance(time.Minute)
	if _, err := r.w.EditFrom(fred, "SharedPage", "<P>fred's take.</P>", "1.1"); err != nil {
		t.Fatal(err)
	}
	// Tom's save, still based on 1.1, conflicts.
	_, err = r.w.EditFrom(tom, "SharedPage", "<P>tom's take.</P>", "1.1")
	if !errors.Is(err, ErrEditConflict) {
		t.Fatalf("concurrent save: %v", err)
	}
	// The conflict diff shows Fred's intervening change.
	d, err := r.w.ConflictDiff("SharedPage", "1.1")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Stats.Changed() || !strings.Contains(d.HTML, "fred's") {
		t.Errorf("conflict diff:\n%s", d.HTML)
	}
	// Tom retries against the new head and succeeds.
	rev, err = r.w.EditFrom(tom, "SharedPage", "<P>tom's take.</P>", "1.2")
	if err != nil || rev != "1.3" {
		t.Fatalf("retry = (%q,%v)", rev, err)
	}
	// Creating over an existing page with empty base also conflicts.
	if _, err := r.w.EditFrom(ward, "SharedPage", "x", ""); !errors.Is(err, ErrEditConflict) {
		t.Fatalf("fresh-create over existing page: %v", err)
	}
}
