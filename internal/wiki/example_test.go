package wiki_test

import (
	"fmt"
	"os"
	"strings"
	"time"

	"aide/internal/simclock"
	"aide/internal/snapshot"
	"aide/internal/wiki"
)

// Example shows the WebWeaver flow: Ward writes, Fred reads, Tom makes a
// subtle edit, and Fred's personalised diff pinpoints it.
func Example() {
	dir, err := os.MkdirTemp("", "wiki-example-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	clock := simclock.New(time.Time{})
	fac, err := snapshot.New(dir, nil, clock)
	if err != nil {
		panic(err)
	}
	w := wiki.New(fac, clock)

	w.Edit("ward", "DesignPatterns", "<P>Patterns call upon one another.</P>")
	w.Read("fred", "DesignPatterns")
	clock.Advance(time.Hour)
	w.Edit("tom", "DesignPatterns", "<P>Patterns build upon one another.</P>")

	d, _ := w.DiffForReader("fred", "DesignPatterns")
	fmt.Println("fred compares", d.OldRev, "to", d.NewRev)
	fmt.Println("edit visible:", strings.Contains(d.HTML, "<STRIKE>call</STRIKE>"))

	unread, _ := w.UnreadChanges("fred")
	fmt.Println("unread pages for fred:", len(unread))
	// Output:
	// fred compares 1.1 to 1.2
	// edit visible: true
	// unread pages for fred: 1
}
