package webclient

import (
	"context"
	"errors"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"
)

// fakeTransport serves canned responses and records requests.
type fakeTransport struct {
	responses map[string]*Response // key "METHOD url"
	err       error
	log       []string
}

func (f *fakeTransport) RoundTrip(_ context.Context, req *Request) (*Response, error) {
	f.log = append(f.log, req.Method+" "+req.URL)
	if f.err != nil {
		return nil, f.err
	}
	if r, ok := f.responses[req.Method+" "+req.URL]; ok {
		return r, nil
	}
	return &Response{Status: 404}, nil
}

func TestHeadReturnsLastModified(t *testing.T) {
	mod := time.Date(1995, 11, 3, 12, 0, 0, 0, time.UTC)
	ft := &fakeTransport{responses: map[string]*Response{
		"HEAD http://h/p": {Status: 200, LastModified: mod},
	}}
	c := New(ft)
	info, err := c.Head(context.Background(), "http://h/p")
	if err != nil {
		t.Fatal(err)
	}
	if !info.HasLastModified || !info.LastModified.Equal(mod) {
		t.Errorf("info = %+v", info)
	}
	if info.HasBody {
		t.Error("HEAD fetched a body")
	}
}

func TestGetComputesChecksum(t *testing.T) {
	ft := &fakeTransport{responses: map[string]*Response{
		"GET http://h/p": {Status: 200, Body: "<html>hi</html>"},
	}}
	c := New(ft)
	info, err := c.Get(context.Background(), "http://h/p")
	if err != nil {
		t.Fatal(err)
	}
	if !info.HasBody || info.Body != "<html>hi</html>" {
		t.Errorf("body = %+v", info)
	}
	if info.Checksum != ChecksumBody("<html>hi</html>") {
		t.Errorf("checksum = %q", info.Checksum)
	}
	// Checksums distinguish different bodies.
	if ChecksumBody("a") == ChecksumBody("b") {
		t.Error("checksum collision on trivial inputs")
	}
}

func TestCheckUsesHeadWhenLastModifiedAvailable(t *testing.T) {
	mod := time.Date(1995, 11, 3, 12, 0, 0, 0, time.UTC)
	ft := &fakeTransport{responses: map[string]*Response{
		"HEAD http://h/p": {Status: 200, LastModified: mod},
	}}
	c := New(ft)
	info, err := c.Check(context.Background(), "http://h/p")
	if err != nil {
		t.Fatal(err)
	}
	if info.HasBody {
		t.Error("Check fetched body despite Last-Modified")
	}
	if len(ft.log) != 1 || ft.log[0] != "HEAD http://h/p" {
		t.Errorf("requests = %v", ft.log)
	}
}

func TestCheckFallsBackToChecksum(t *testing.T) {
	// A CGI-ish page: no Last-Modified on HEAD, so Check must GET and
	// checksum the body (the w3new strategy of §2.1).
	ft := &fakeTransport{responses: map[string]*Response{
		"HEAD http://h/cgi": {Status: 200},
		"GET http://h/cgi":  {Status: 200, Body: "output 42"},
	}}
	c := New(ft)
	info, err := c.Check(context.Background(), "http://h/cgi")
	if err != nil {
		t.Fatal(err)
	}
	if !info.HasBody || info.Checksum == "" {
		t.Errorf("fallback missing checksum: %+v", info)
	}
	if len(ft.log) != 2 {
		t.Errorf("requests = %v", ft.log)
	}
}

func TestRedirectFollowing(t *testing.T) {
	ft := &fakeTransport{responses: map[string]*Response{
		"GET http://h/old":      {Status: 302, Location: "http://h/new"},
		"GET http://h/new":      {Status: 301, Location: "/final"},
		"GET http://h/final":    {Status: 200, Body: "here"},
		"HEAD http://h/relbase": {Status: 302, Location: "sibling.html"},
		"HEAD http://h/sibling.html": {Status: 200,
			LastModified: time.Date(1995, 1, 1, 0, 0, 0, 0, time.UTC)},
	}}
	c := New(ft)
	info, err := c.Get(context.Background(), "http://h/old")
	if err != nil {
		t.Fatal(err)
	}
	if info.URL != "http://h/final" || info.Body != "here" || info.Redirected != 2 {
		t.Errorf("info = %+v", info)
	}
	// Relative Location against a path-less base directory.
	info, err = c.Head(context.Background(), "http://h/relbase")
	if err != nil {
		t.Fatal(err)
	}
	if info.URL != "http://h/sibling.html" {
		t.Errorf("relative redirect resolved to %q", info.URL)
	}
}

func TestRedirectLoopBounded(t *testing.T) {
	ft := &fakeTransport{responses: map[string]*Response{
		"GET http://h/a": {Status: 302, Location: "http://h/b"},
		"GET http://h/b": {Status: 302, Location: "http://h/a"},
	}}
	c := New(ft)
	if _, err := c.Get(context.Background(), "http://h/a"); err == nil {
		t.Fatal("redirect loop not detected")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		status int
		err    error
		want   ErrKind
	}{
		{200, nil, OK},
		{204, nil, OK},
		{301, nil, Moved},
		{404, nil, Gone},
		{410, nil, Gone},
		{403, nil, Forbidden},
		{401, nil, Forbidden},
		{500, nil, Transient},
		{503, nil, Transient},
		{0, errors.New("timeout"), Transient},
	}
	for _, c := range cases {
		if got := Classify(c.status, c.err); got != c.want {
			t.Errorf("Classify(%d,%v) = %v, want %v", c.status, c.err, got, c.want)
		}
	}
	// Kinds have distinct names for reports.
	seen := map[string]bool{}
	for _, k := range []ErrKind{OK, Transient, Moved, Gone, Forbidden} {
		if seen[k.String()] {
			t.Errorf("duplicate kind name %q", k.String())
		}
		seen[k.String()] = true
	}
}

func TestTransportErrorPropagates(t *testing.T) {
	ft := &fakeTransport{err: errors.New("connection refused")}
	c := New(ft)
	if _, err := c.Head(context.Background(), "http://h/x"); err == nil {
		t.Fatal("transport error swallowed")
	}
}

// fakeFileInfo implements fs.FileInfo for the file: tests.
type fakeFileInfo struct {
	mod time.Time
}

func (f fakeFileInfo) Name() string       { return "f" }
func (f fakeFileInfo) Size() int64        { return 0 }
func (f fakeFileInfo) Mode() fs.FileMode  { return 0 }
func (f fakeFileInfo) ModTime() time.Time { return f.mod }
func (f fakeFileInfo) IsDir() bool        { return false }
func (f fakeFileInfo) Sys() any           { return nil }

func TestFileURLStat(t *testing.T) {
	mod := time.Date(1995, 10, 10, 8, 0, 0, 0, time.UTC)
	c := New(&fakeTransport{})
	c.Stat = func(path string) (os.FileInfo, error) {
		if path != "/home/u/notes.html" {
			t.Errorf("stat path = %q", path)
		}
		return fakeFileInfo{mod: mod}, nil
	}
	info, err := c.Head(context.Background(), "file:/home/u/notes.html")
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != 200 || !info.LastModified.Equal(mod) {
		t.Errorf("info = %+v", info)
	}
}

func TestFileURLMissing(t *testing.T) {
	c := New(&fakeTransport{})
	c.Stat = func(string) (os.FileInfo, error) { return nil, os.ErrNotExist }
	info, err := c.Head(context.Background(), "file:///no/such")
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != 404 {
		t.Errorf("status = %d, want 404", info.Status)
	}
}

func TestFileURLGet(t *testing.T) {
	c := New(&fakeTransport{})
	c.Stat = func(string) (os.FileInfo, error) { return fakeFileInfo{mod: time.Now()}, nil }
	c.ReadFile = func(path string) ([]byte, error) { return []byte("file body"), nil }
	info, err := c.Get(context.Background(), "file:/x")
	if err != nil {
		t.Fatal(err)
	}
	if info.Body != "file body" || info.Checksum == "" {
		t.Errorf("info = %+v", info)
	}
}

func TestHTTPTransportRealServer(t *testing.T) {
	mod := time.Date(1995, 11, 3, 12, 0, 0, 0, time.UTC)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/page":
			w.Header().Set("Last-Modified", mod.Format(http.TimeFormat))
			if r.Method != "HEAD" {
				w.Write([]byte("<html>real</html>"))
			}
		case "/moved":
			http.Redirect(w, r, "/page", http.StatusFound)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	c := New(&HTTPTransport{})
	info, err := c.Head(context.Background(), srv.URL+"/page")
	if err != nil {
		t.Fatal(err)
	}
	if !info.LastModified.Equal(mod) {
		t.Errorf("Last-Modified = %v, want %v", info.LastModified, mod)
	}
	info, err = c.Get(context.Background(), srv.URL+"/moved")
	if err != nil {
		t.Fatal(err)
	}
	if info.Body != "<html>real</html>" || info.Redirected != 1 {
		t.Errorf("info = %+v", info)
	}
	info, err = c.Head(context.Background(), srv.URL+"/gone")
	if err != nil || Classify(info.Status, nil) != Gone {
		t.Errorf("missing page: %+v err=%v", info, err)
	}
}

func TestFilePathForms(t *testing.T) {
	cases := map[string]string{
		"file:/a/b":    "/a/b",
		"file:///a/b":  "/a/b",
		"file://a/b":   "/a/b",
		"file:rel/pth": "/rel/pth",
	}
	for in, want := range cases {
		if got := filePath(in); got != want {
			t.Errorf("filePath(%q) = %q, want %q", in, got, want)
		}
	}
}
