// Package webclient is AIDE's HTTP access layer. It provides the two
// change-detection strategies of §2.1 — the HEAD request for a
// Last-Modified date (w3new's strategy) and the full-GET content checksum
// (URL-minder's strategy, required for CGI output that carries no
// Last-Modified) — plus the error classification that w3newer's §3.1
// error handling depends on (transient network trouble vs. a URL that is
// really gone).
//
// Transport abstracts the wire so that the same client runs against the
// real network (HTTPTransport) or against the in-process synthetic web
// (internal/websim), and also resolves file: URLs with a stat call, as
// w3newer's "file:" hotlist entries do.
package webclient

import (
	"context"
	"crypto/md5"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"aide/internal/breaker"
	"aide/internal/httpdate"
	"aide/internal/obs"
	"aide/internal/simclock"
)

// Request is a minimal HTTP request. AIDE issues HEAD and GET for
// tracking and archiving, conditional GETs for cache revalidation, and
// POST for the §8.4 form services.
type Request struct {
	// Method is "HEAD", "GET", or "POST".
	Method string
	// URL is the absolute URL.
	URL string
	// IfModifiedSince, when nonzero, makes the request conditional: the
	// server may answer 304 Not Modified instead of a body.
	IfModifiedSince time.Time
	// Body is the request entity for POST (a URL-encoded form).
	Body string
	// GetBody, when non-nil, supplies the request entity as a fresh
	// reader per wire attempt instead of Body — the streaming path for
	// large uploads (shard exports) that must not be buffered into a
	// string. It is called once per attempt, so retries and redirect
	// hops replay the body from the start; implementations must return
	// an independent reader each call. Body is ignored when GetBody is
	// set.
	GetBody func() (io.Reader, error)
	// ContentType describes Body; defaults to
	// application/x-www-form-urlencoded for POSTs with a body.
	ContentType string
	// TraceParent is the W3C trace-context header value propagating the
	// caller's trace across the process boundary. Client.do fills it from
	// the request context's span; transports that cross a real socket
	// (HTTPTransport) send it as the traceparent header.
	TraceParent string
}

// Response carries the pieces of an HTTP response AIDE consumes.
type Response struct {
	// Status is the HTTP status code.
	Status int
	// LastModified is the parsed Last-Modified header; zero when the
	// server sent none (typical for CGI output).
	LastModified time.Time
	// Location is the redirect target for 3xx responses.
	Location string
	// Body is the entity body ("" for HEAD).
	Body string
	// RetryAfter is the server's requested pause before retrying,
	// parsed from the Retry-After header of a 503 (or other) response;
	// zero when the server sent none. RetryPolicy honours it, capped at
	// MaxDelay.
	RetryAfter time.Duration
}

// Transport performs a request. Implementations: HTTPTransport (real
// network) and websim.Web (simulation). Every implementation must
// honour ctx: return promptly with ctx.Err() (possibly wrapped) once
// the context is canceled or past its deadline.
type Transport interface {
	RoundTrip(ctx context.Context, req *Request) (*Response, error)
}

// ErrKind classifies failures for w3newer's error handling (§3.1).
type ErrKind int

// Error kinds, ordered roughly by severity.
const (
	// OK: no error.
	OK ErrKind = iota
	// Transient: timeouts, refused connections, 5xx — worth retrying on
	// the next run ("errors are likely to be transient").
	Transient
	// Moved: the URL has a forwarding pointer (3xx).
	Moved
	// Gone: the URL no longer exists (404/410) — the user should act.
	Gone
	// Forbidden: the server refuses access (401/403).
	Forbidden
	// Tripped: the host's circuit breaker is open; the call was
	// short-circuited without touching the wire. Like Transient it is
	// worth retrying later, but it carries no new evidence about the
	// host — the breaker's cooldown, not the caller, decides when the
	// wire is tried again.
	Tripped
)

// String names the kind for reports.
func (k ErrKind) String() string {
	switch k {
	case OK:
		return "ok"
	case Transient:
		return "transient error"
	case Moved:
		return "moved"
	case Gone:
		return "gone"
	case Forbidden:
		return "forbidden"
	case Tripped:
		return "breaker-open"
	}
	return "unknown"
}

// ErrBreakerOpen is the failure delivered for a host whose circuit
// breaker is open: the call never touched the wire. Test with
// errors.Is; Classify maps it to Tripped.
var ErrBreakerOpen = errors.New("webclient: host circuit breaker open")

// Classify maps a status code and transport error to an ErrKind.
func Classify(status int, err error) ErrKind {
	if err != nil {
		if errors.Is(err, ErrBreakerOpen) {
			return Tripped
		}
		return Transient
	}
	switch {
	case status >= 200 && status < 300:
		return OK
	case status >= 300 && status < 400:
		return Moved
	case status == 404 || status == 410:
		return Gone
	case status == 401 || status == 403:
		return Forbidden
	case status >= 500:
		return Transient
	default:
		return Transient
	}
}

// PageInfo is the result of a check or fetch.
type PageInfo struct {
	// URL is the final URL after redirects.
	URL string
	// Status is the final HTTP status (200 for file: successes).
	Status int
	// LastModified is the server's modification date, if provided.
	LastModified time.Time
	// HasLastModified records whether the server provided one.
	HasLastModified bool
	// Body is the content, when fetched.
	Body string
	// HasBody records whether Body was fetched.
	HasBody bool
	// Checksum is the hex MD5 of Body, when fetched.
	Checksum string
	// Redirected counts redirects followed.
	Redirected int
	// Attempts is the total number of wire round trips the operation
	// took, retries and redirect hops included (0 for file: URLs, which
	// never touch the wire). Callers can assert retry behaviour from
	// this instead of sniffing logs.
	Attempts int
	// BackoffTotal is the cumulative time spent sleeping between retry
	// attempts (simulated time under a simclock.Sim pacing clock).
	BackoffTotal time.Duration
}

// Client issues checks and fetches over a Transport. Every method takes
// a leading context.Context that bounds the whole operation, redirects
// and retries included: ctx flows down into the Transport, so a caller's
// deadline or cancellation stops the wire work promptly.
type Client struct {
	// Transport performs the requests; required.
	Transport Transport
	// MaxRedirects bounds redirect following (default 5).
	MaxRedirects int
	// Timeout, when positive, bounds each individual round-trip attempt
	// (a per-request timeout layered under the caller's ctx). A tripped
	// timeout is a Transient failure and is retried per Retry.
	Timeout time.Duration
	// Retry is the transient-failure retry policy; the zero value
	// disables retry.
	Retry RetryPolicy
	// Clock paces retry backoff and measures attempt latency; wall
	// clock when nil. Inject a simclock.Sim to make backoff spend
	// simulated time.
	Clock simclock.Clock
	// Metrics receives the client's counters and latency histograms
	// (attempts, retries by cause, timeouts, cancels); obs.Default when
	// nil. Inject a private registry to isolate a test's numbers.
	Metrics *obs.Registry
	// Breakers, when non-nil, applies per-host circuit breaking: calls
	// to a host whose breaker is open fail fast with ErrBreakerOpen
	// (ErrKind Tripped) instead of paying connect/timeout/retry costs,
	// and every attempt's outcome feeds the host's breaker.
	Breakers *breaker.Set
	// Stat resolves file: URLs; defaults to os.Stat. Replaceable for
	// tests.
	Stat func(path string) (os.FileInfo, error)
	// ReadFile fetches file: bodies; defaults to os.ReadFile.
	ReadFile func(path string) ([]byte, error)

	retrier retrier
}

// New returns a Client over the given transport.
func New(t Transport) *Client {
	return &Client{Transport: t, MaxRedirects: 5, Stat: os.Stat, ReadFile: os.ReadFile}
}

// Head performs a HEAD request (following redirects) and returns the
// modification info without the body.
func (c *Client) Head(ctx context.Context, url string) (PageInfo, error) {
	if isFileURL(url) {
		return c.statFile(url)
	}
	return c.do(ctx, Request{Method: "HEAD", URL: url})
}

// Get fetches the page body (following redirects) and computes its
// checksum.
func (c *Client) Get(ctx context.Context, url string) (PageInfo, error) {
	if isFileURL(url) {
		return c.readFile(url)
	}
	info, err := c.do(ctx, Request{Method: "GET", URL: url})
	if err != nil {
		return info, err
	}
	info.HasBody = true
	info.Checksum = ChecksumBody(info.Body)
	return info, nil
}

// GetConditional performs a conditional GET (If-Modified-Since). When
// the server answers 304, notModified is true and the PageInfo carries
// no body — the Netscape-style revalidation of §3.1's cache-consistency
// discussion.
func (c *Client) GetConditional(ctx context.Context, url string, since time.Time) (info PageInfo, notModified bool, err error) {
	if isFileURL(url) {
		info, err = c.statFile(url)
		if err != nil || info.Status != 200 {
			return info, false, err
		}
		if !info.LastModified.After(since) {
			info.Status = 304
			return info, true, nil
		}
		info, err = c.readFile(url)
		return info, false, err
	}
	info, err = c.do(ctx, Request{Method: "GET", URL: url, IfModifiedSince: since})
	if err != nil {
		return info, false, err
	}
	if info.Status == 304 {
		return info, true, nil
	}
	info.HasBody = true
	info.Checksum = ChecksumBody(info.Body)
	return info, false, nil
}

// Post submits a URL-encoded form and returns the service's output with
// its checksum — the §8.4 path for tracking CGI services that use POST.
func (c *Client) Post(ctx context.Context, url, form string) (PageInfo, error) {
	info, err := c.do(ctx, Request{
		Method:      "POST",
		URL:         url,
		Body:        form,
		ContentType: "application/x-www-form-urlencoded",
	})
	if err != nil {
		return info, err
	}
	info.HasBody = true
	info.Checksum = ChecksumBody(info.Body)
	return info, nil
}

// PostBody submits an arbitrary request entity with an explicit content
// type and returns the response — the transfer path the snapshot
// replicator uses to push shard deltas.
func (c *Client) PostBody(ctx context.Context, url, contentType, body string) (PageInfo, error) {
	info, err := c.do(ctx, Request{
		Method:      "POST",
		URL:         url,
		Body:        body,
		ContentType: contentType,
	})
	if err != nil {
		return info, err
	}
	info.HasBody = true
	info.Checksum = ChecksumBody(info.Body)
	return info, nil
}

// PostReader submits a request entity streamed from a reader. getBody
// is invoked once per wire attempt (retries and redirect hops replay
// the body), so it must return a fresh reader positioned at the start
// each time. Unlike PostBody the entity is never buffered into a
// string by this layer — multi-megabyte shard pushes flow straight
// from the producer to the socket.
func (c *Client) PostReader(ctx context.Context, url, contentType string, getBody func() (io.Reader, error)) (PageInfo, error) {
	info, err := c.do(ctx, Request{
		Method:      "POST",
		URL:         url,
		GetBody:     getBody,
		ContentType: contentType,
	})
	if err != nil {
		return info, err
	}
	info.HasBody = true
	info.Checksum = ChecksumBody(info.Body)
	return info, nil
}

// Check implements w3new's strategy: request the Last-Modified date if
// available; otherwise retrieve and checksum the whole page (§2.1).
func (c *Client) Check(ctx context.Context, url string) (PageInfo, error) {
	info, err := c.Head(ctx, url)
	if err != nil || Classify(info.Status, nil) != OK {
		return info, err
	}
	if info.HasLastModified {
		return info, nil
	}
	return c.Get(ctx, url)
}

// ChecksumBody returns the hex MD5 of a page body — the URL-minder
// change-detection strategy.
func ChecksumBody(body string) string {
	sum := md5.Sum([]byte(body))
	return hex.EncodeToString(sum[:])
}

// do performs one logical request: redirect following around the
// retrying round trip, traced as one "webclient.fetch" span.
func (c *Client) do(ctx context.Context, req Request) (PageInfo, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	info := PageInfo{URL: req.URL}
	ctx, span := obs.StartSpan(ctx, "webclient.fetch")
	span.SetAttr("method", req.Method)
	span.SetAttr("url", req.URL)
	defer func() {
		span.SetAttr("status", strconv.Itoa(info.Status))
		span.SetAttr("attempts", strconv.Itoa(info.Attempts))
		span.End()
	}()
	max := c.MaxRedirects
	if max <= 0 {
		max = 5
	}
	// The fetch span is the parent the far side links under; rendered
	// once here, reused for every redirect hop and retry attempt.
	traceParent := obs.Inject(ctx)
	for hop := 0; ; hop++ {
		hopReq := req
		hopReq.URL = info.URL
		hopReq.TraceParent = traceParent
		resp, tries, slept, err := c.roundTrip(ctx, &hopReq)
		info.Attempts += tries
		info.BackoffTotal += slept
		if err != nil {
			return info, err
		}
		info.Status = resp.Status
		info.LastModified = resp.LastModified
		info.HasLastModified = !resp.LastModified.IsZero()
		info.Body = resp.Body
		if resp.Status >= 300 && resp.Status < 400 && resp.Location != "" {
			if hop >= max {
				return info, fmt.Errorf("webclient: too many redirects at %s", info.URL)
			}
			info.URL = resolveRef(info.URL, resp.Location)
			info.Redirected++
			continue
		}
		return info, nil
	}
}

// statFile resolves a file: URL via stat, the cheap local check of §3.
func (c *Client) statFile(url string) (PageInfo, error) {
	path := filePath(url)
	fi, err := c.Stat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return PageInfo{URL: url, Status: 404}, nil
		}
		return PageInfo{URL: url}, err
	}
	return PageInfo{
		URL: url, Status: 200,
		LastModified:    fi.ModTime().UTC(),
		HasLastModified: true,
	}, nil
}

// readFile fetches a file: URL body.
func (c *Client) readFile(url string) (PageInfo, error) {
	info, err := c.statFile(url)
	if err != nil || info.Status != 200 {
		return info, err
	}
	data, err := c.ReadFile(filePath(url))
	if err != nil {
		return info, err
	}
	info.Body = string(data)
	info.HasBody = true
	info.Checksum = ChecksumBody(info.Body)
	return info, nil
}

func isFileURL(url string) bool {
	return strings.HasPrefix(url, "file:")
}

// filePath strips the file: prefix, tolerating both "file:/p" and
// "file:///p".
func filePath(url string) string {
	p := strings.TrimPrefix(url, "file:")
	p = strings.TrimPrefix(p, "//")
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return p
}

// resolveRef resolves a possibly relative redirect Location against base.
func resolveRef(base, ref string) string {
	if strings.Contains(ref, "://") {
		return ref
	}
	scheme, rest, ok := strings.Cut(base, "://")
	if !ok {
		return ref
	}
	host, path, _ := strings.Cut(rest, "/")
	if strings.HasPrefix(ref, "/") {
		return scheme + "://" + host + ref
	}
	// Relative to the base directory.
	dir := ""
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		dir = path[:i]
	}
	return scheme + "://" + host + "/" + joinPath(dir, ref)
}

func joinPath(dir, ref string) string {
	if dir == "" {
		return ref
	}
	return dir + "/" + ref
}

// --- real-network transport ---------------------------------------------------

// HTTPTransport performs requests over the real network with net/http.
type HTTPTransport struct {
	// Client is the underlying HTTP client; a default with a 30-second
	// timeout is used when nil.
	Client *http.Client
	// UserAgent identifies the robot (robots.txt compliance is handled
	// by internal/robots above this layer).
	UserAgent string
}

// RoundTrip implements Transport. The request is bound to ctx, so the
// caller's deadline or cancellation aborts the dial, the headers, and
// the body read. Redirects are reported, not followed: the caller's
// redirect logic also runs against simulated transports, so it lives in
// Client.
func (t *HTTPTransport) RoundTrip(ctx context.Context, req *Request) (*Response, error) {
	hc := t.Client
	if hc == nil {
		hc = &http.Client{
			Timeout: 30 * time.Second,
			CheckRedirect: func(*http.Request, []*http.Request) error {
				return http.ErrUseLastResponse
			},
		}
	}
	var bodyReader io.Reader
	if req.GetBody != nil {
		var gerr error
		bodyReader, gerr = req.GetBody()
		if gerr != nil {
			return nil, gerr
		}
	} else if req.Body != "" {
		bodyReader = strings.NewReader(req.Body)
	}
	hreq, err := http.NewRequestWithContext(ctx, req.Method, req.URL, bodyReader)
	if err != nil {
		return nil, err
	}
	ua := t.UserAgent
	if ua == "" {
		ua = "w3newer/2.0 (AIDE)"
	}
	hreq.Header.Set("User-Agent", ua)
	if req.TraceParent != "" {
		hreq.Header.Set(obs.TraceParentHeader, req.TraceParent)
	}
	if !req.IfModifiedSince.IsZero() {
		hreq.Header.Set("If-Modified-Since", httpdate.Format(req.IfModifiedSince))
	}
	if req.Body != "" || req.GetBody != nil {
		ct := req.ContentType
		if ct == "" {
			ct = "application/x-www-form-urlencoded"
		}
		hreq.Header.Set("Content-Type", ct)
	}
	hresp, err := hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	resp := &Response{Status: hresp.StatusCode, Location: hresp.Header.Get("Location")}
	if lm := hresp.Header.Get("Last-Modified"); lm != "" {
		// The shared robust parser accepts the obsolete RFC 850 and
		// asctime forms old servers still emit (http.ParseTime does too,
		// but not the malformed variants in the wild).
		if ts, perr := httpdate.Parse(lm); perr == nil {
			resp.LastModified = ts
		}
	}
	if ra := hresp.Header.Get("Retry-After"); ra != "" {
		resp.RetryAfter = parseRetryAfter(ra)
	}
	if req.Method != "HEAD" {
		body, rerr := io.ReadAll(hresp.Body)
		if rerr != nil {
			return nil, rerr
		}
		resp.Body = string(body)
	}
	return resp, nil
}

// parseRetryAfter parses a Retry-After header value: either delta
// seconds or an HTTP-date (relative to the wall clock, the only clock a
// real server's date can be compared against). Unparseable values yield
// zero.
func parseRetryAfter(v string) time.Duration {
	if secs, err := strconv.Atoi(strings.TrimSpace(v)); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := httpdate.Parse(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// hostOfURL extracts the host[:port] component of an http(s) URL for
// per-host bookkeeping (circuit breakers). URLs without an authority
// (file:, form:<id>) yield "".
func hostOfURL(rawURL string) string {
	_, rest, ok := strings.Cut(rawURL, "://")
	if !ok {
		return ""
	}
	host, _, _ := strings.Cut(rest, "/")
	return host
}

// IsTimeout reports whether err is a network timeout — including a
// tripped per-request context deadline — for callers that want to
// distinguish overload from other transient failures (§3.1's
// proxy-server overload aggravation concern).
func IsTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
