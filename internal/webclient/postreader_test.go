package webclient

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// bodyTransport consumes the streaming body like a real wire transport
// and answers from a script, recording what each attempt saw.
type bodyTransport struct {
	script []func() (*Response, error)
	bodies []string
}

func (b *bodyTransport) RoundTrip(_ context.Context, req *Request) (*Response, error) {
	body := req.Body
	if req.GetBody != nil {
		r, err := req.GetBody()
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(r)
		if err != nil {
			return nil, err
		}
		body = string(data)
	}
	b.bodies = append(b.bodies, body)
	i := len(b.bodies) - 1
	if i >= len(b.script) {
		i = len(b.script) - 1
	}
	return b.script[i]()
}

func TestPostReaderReplaysBodyAcrossRetries(t *testing.T) {
	bt := &bodyTransport{script: []func() (*Response, error){serverErr, ok}}
	c, _, _ := retryClient()
	c.Transport = bt
	payload := "shard export payload"
	getBody := func() (io.Reader, error) { return strings.NewReader(payload), nil }
	info, err := c.PostReader(context.Background(), "http://h/import", "application/x-ndjson", getBody)
	if err != nil || info.Status != 200 {
		t.Fatalf("info = %+v, err = %v", info, err)
	}
	if len(bt.bodies) != 2 {
		t.Fatalf("attempts = %d, want 2 (503 then 200)", len(bt.bodies))
	}
	for i, b := range bt.bodies {
		if b != payload {
			t.Errorf("attempt %d saw body %q, want full replay %q", i, b, payload)
		}
	}
}

func TestPostReaderStreamsOverHTTPTransport(t *testing.T) {
	var got string
	var contentType string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		data, _ := io.ReadAll(r.Body)
		got = string(data)
		contentType = r.Header.Get("Content-Type")
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	c := New(&HTTPTransport{})
	payload := strings.Repeat("0123456789abcdef", 4096) // 64 KiB, no string buffering required
	info, err := c.PostReader(context.Background(), srv.URL+"/shard/import", "application/x-ndjson",
		func() (io.Reader, error) { return strings.NewReader(payload), nil })
	if err != nil || info.Status != 200 {
		t.Fatalf("info = %+v, err = %v", info, err)
	}
	if got != payload {
		t.Errorf("server received %d bytes, want %d intact", len(got), len(payload))
	}
	if contentType != "application/x-ndjson" {
		t.Errorf("content type = %q", contentType)
	}
}
