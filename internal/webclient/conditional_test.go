package webclient

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"
)

// condTransport answers conditionally based on a fixed mod time.
type condTransport struct {
	mod  time.Time
	body string
	log  []Request
}

func (c *condTransport) RoundTrip(_ context.Context, req *Request) (*Response, error) {
	c.log = append(c.log, *req)
	if !req.IfModifiedSince.IsZero() && !c.mod.After(req.IfModifiedSince) {
		return &Response{Status: 304, LastModified: c.mod}, nil
	}
	if req.Method == "POST" {
		return &Response{Status: 200, Body: "posted:" + req.Body}, nil
	}
	return &Response{Status: 200, LastModified: c.mod, Body: c.body}, nil
}

func TestGetConditionalNotModified(t *testing.T) {
	mod := time.Date(1995, 10, 1, 0, 0, 0, 0, time.UTC)
	ct := &condTransport{mod: mod, body: "content"}
	c := New(ct)

	info, notMod, err := c.GetConditional(context.Background(), "http://h/p", mod.Add(time.Hour))
	if err != nil || !notMod {
		t.Fatalf("expected 304: %+v notMod=%v err=%v", info, notMod, err)
	}
	if info.HasBody {
		t.Error("304 response carried a body")
	}
	info, notMod, err = c.GetConditional(context.Background(), "http://h/p", mod.Add(-time.Hour))
	if err != nil || notMod {
		t.Fatalf("expected 200: notMod=%v err=%v", notMod, err)
	}
	if info.Body != "content" || info.Checksum == "" {
		t.Errorf("info = %+v", info)
	}
}

func TestPostSendsBody(t *testing.T) {
	ct := &condTransport{}
	c := New(ct)
	info, err := c.Post(context.Background(), "http://svc/run", "a=1&b=2")
	if err != nil {
		t.Fatal(err)
	}
	if info.Body != "posted:a=1&b=2" || !info.HasBody || info.Checksum == "" {
		t.Fatalf("info = %+v", info)
	}
	last := ct.log[len(ct.log)-1]
	if last.Method != "POST" || last.Body != "a=1&b=2" ||
		last.ContentType != "application/x-www-form-urlencoded" {
		t.Errorf("request = %+v", last)
	}
}

func TestHTTPTransportConditionalAndPost(t *testing.T) {
	mod := time.Date(1995, 11, 3, 12, 0, 0, 0, time.UTC)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case "POST":
			if ct := r.Header.Get("Content-Type"); ct != "application/x-www-form-urlencoded" {
				t.Errorf("content type = %q", ct)
			}
			r.ParseForm()
			w.Write([]byte("echo " + r.Form.Get("x")))
		default:
			if ims := r.Header.Get("If-Modified-Since"); ims != "" {
				if ts, err := http.ParseTime(ims); err == nil && !mod.After(ts) {
					w.WriteHeader(http.StatusNotModified)
					return
				}
			}
			w.Header().Set("Last-Modified", mod.Format(http.TimeFormat))
			w.Write([]byte("fresh body"))
		}
	}))
	defer srv.Close()

	c := New(&HTTPTransport{})
	_, notMod, err := c.GetConditional(context.Background(), srv.URL+"/p", mod.Add(time.Minute))
	if err != nil || !notMod {
		t.Fatalf("real 304: notMod=%v err=%v", notMod, err)
	}
	info, notMod, err := c.GetConditional(context.Background(), srv.URL+"/p", mod.Add(-time.Hour))
	if err != nil || notMod || info.Body != "fresh body" {
		t.Fatalf("real 200: %+v notMod=%v err=%v", info, notMod, err)
	}
	info, err = c.Post(context.Background(), srv.URL+"/svc", "x=42")
	if err != nil || info.Body != "echo 42" {
		t.Fatalf("real POST: %+v err=%v", info, err)
	}
}

func TestGetConditionalFileURL(t *testing.T) {
	mod := time.Date(1995, 10, 10, 8, 0, 0, 0, time.UTC)
	c := New(&condTransport{})
	c.Stat = func(string) (os.FileInfo, error) { return fakeFileInfo{mod: mod}, nil }
	c.ReadFile = func(string) ([]byte, error) { return []byte("file data"), nil }

	_, notMod, err := c.GetConditional(context.Background(), "file:/x", mod.Add(time.Hour))
	if err != nil || !notMod {
		t.Fatalf("file 304: notMod=%v err=%v", notMod, err)
	}
	info, notMod, err := c.GetConditional(context.Background(), "file:/x", mod.Add(-time.Hour))
	if err != nil || notMod || info.Body != "file data" {
		t.Fatalf("file 200: %+v notMod=%v err=%v", info, notMod, err)
	}
}
