package webclient

// Retry with exponential backoff for the §3.1 observation that network
// "errors are likely to be transient": rather than giving up on the
// first refused connection or timed-out request, the client retries a
// bounded number of times with exponentially growing, jittered pauses.
// Backoff sleeps go through the injected simclock.Clock, so under a
// simulated clock a retry schedule spends simulated — not wall — time
// and tests of attempt counts and pacing are deterministic.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"aide/internal/breaker"
	"aide/internal/obs"
	"aide/internal/simclock"
)

// RetryPolicy configures transient-failure retry on a Client.
//
// Only failures classified Transient (transport errors, including
// per-request timeouts, and 5xx statuses) are retried; Gone, Forbidden,
// Moved, and success are delivered immediately. A done context stops
// the schedule at once: cancellation always wins over retry.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per round trip, first
	// attempt included. Values <= 1 disable retry.
	MaxAttempts int
	// BaseDelay is the pause before the first retry; each further retry
	// doubles it. Defaults to 1s when retries are enabled.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. Defaults to 30s.
	MaxDelay time.Duration
	// Jitter is the fraction of each backoff randomised away (0..1) so
	// that a fleet of clients does not retry in lockstep. Zero disables
	// jitter, which keeps backoff sums exactly predictable in tests.
	Jitter float64
	// Seed seeds the jitter source, for reproducible schedules.
	Seed int64
}

// DefaultRetryPolicy is a conservative production default: three tries,
// 1s/2s pauses (±10%), bounded by 30s.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: time.Second, MaxDelay: 30 * time.Second, Jitter: 0.1}
}

// attempts returns the effective total try count.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts <= 1 {
		return 1
	}
	return p.MaxAttempts
}

// maxDelay returns the effective backoff cap.
func (p RetryPolicy) maxDelay() time.Duration {
	if p.MaxDelay > 0 {
		return p.MaxDelay
	}
	return 30 * time.Second
}

// backoff returns the pause after attempt (0-based), already jittered.
func (p RetryPolicy) backoff(attempt int, jitterFrac float64) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = time.Second
	}
	max := p.maxDelay()
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if p.Jitter > 0 {
		d -= time.Duration(float64(d) * p.Jitter * jitterFrac)
	}
	return d
}

// retrier owns the jitter source; one per Client, safe for concurrent
// round trips.
type retrier struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// jitterFrac returns the next deterministic jitter fraction in [0,1).
func (r *retrier) jitterFrac(seed int64) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rng == nil {
		r.rng = rand.New(rand.NewSource(seed))
	}
	return r.rng.Float64()
}

// roundTrip performs one logical request: per-attempt timeout, then
// retry-with-backoff on Transient failures, stopping the moment the
// caller's context is done. It reports how many attempts it made and
// how long it slept between them, and records the attempt/retry/latency
// metrics.
func (c *Client) roundTrip(ctx context.Context, req *Request) (resp *Response, tries int, backoff time.Duration, err error) {
	m := c.metrics()
	var br *breaker.Breaker
	if c.Breakers != nil {
		if host := hostOfURL(req.URL); host != "" {
			br = c.Breakers.For(host)
		}
	}
	maxTries := c.Retry.attempts()
	for attempt := 0; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			m.Counter("webclient.cancels").Inc()
			return nil, tries, backoff, cerr
		}
		if br != nil && !br.Allow() {
			// The host's breaker is open: fail fast, distinctly, without
			// touching the wire — retrying here would defeat the point.
			m.Counter("webclient.breaker.short_circuits").Inc()
			return nil, tries, backoff, fmt.Errorf("%w: %s", ErrBreakerOpen, hostOfURL(req.URL))
		}
		tries++
		m.Counter("webclient.attempts").Inc()
		start := c.clock().Now()
		resp, err = c.attempt(ctx, req)
		m.Histogram("webclient.attempt.duration", nil).ObserveDuration(c.clock().Now().Sub(start))
		if br != nil {
			// Any response below 500 proves the host alive; a transport
			// error, timeout, or 5xx is a host-level failure.
			br.Record(err == nil && resp.Status < 500)
		}
		if err != nil && IsTimeout(err) {
			m.Counter("webclient.timeouts").Inc()
		}
		if err == nil && Classify(resp.Status, nil) != Transient {
			return resp, tries, backoff, nil
		}
		if err != nil && ctx.Err() != nil {
			// The caller's own deadline or cancellation tripped
			// mid-flight; retrying would outlive the caller's interest.
			m.Counter("webclient.cancels").Inc()
			return nil, tries, backoff, err
		}
		if attempt+1 >= maxTries {
			// Out of tries: deliver the last outcome (a 5xx response is
			// returned as-is for the caller's Classify to see).
			return resp, tries, backoff, err
		}
		cause := retryCause(resp, err)
		pause := c.Retry.backoff(attempt, c.retrier.jitterFrac(c.Retry.Seed))
		if err == nil && resp.Status == 503 && resp.RetryAfter > 0 {
			// The server asked for a specific pause (load shedding's
			// 503 + Retry-After): honour it, capped at MaxDelay, and
			// account it as its own retry cause.
			cause = "retry-after"
			pause = resp.RetryAfter
			if max := c.Retry.maxDelay(); pause > max {
				pause = max
			}
		}
		m.Counter("webclient.retries").Inc()
		m.Counter("webclient.retries." + cause).Inc()
		obs.Logger().Debug("webclient retry",
			"url", req.URL, "attempt", attempt+1, "cause", cause, "backoff", pause)
		if serr := simclock.Sleep(ctx, c.clock(), pause); serr != nil {
			if err == nil {
				err = serr
			}
			m.Counter("webclient.cancels").Inc()
			return nil, tries, backoff, err
		}
		backoff += pause
	}
}

// retryCause labels why an attempt is being retried, for the per-cause
// retry counters (§3.1 distinguishes proxy overload from other
// transient trouble).
func retryCause(resp *Response, err error) string {
	switch {
	case err == nil:
		return "status" // a retryable 5xx
	case IsTimeout(err):
		return "timeout"
	default:
		return "transport"
	}
}

// attempt is one wire round trip under the per-request timeout.
func (c *Client) attempt(ctx context.Context, req *Request) (*Response, error) {
	if c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	return c.Transport.RoundTrip(ctx, req)
}

// clock returns the client's pacing clock (wall when unset).
func (c *Client) clock() simclock.Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return simclock.Wall{}
}

// metrics returns the client's registry (obs.Default when unset).
func (c *Client) metrics() *obs.Registry {
	if c.Metrics != nil {
		return c.Metrics
	}
	return obs.Default
}
