package webclient

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"aide/internal/obs"
)

// TestTraceParentSentOnWire checks a Get issued inside a span carries a
// traceparent header that parses back to the client's own fetch span —
// the propagation half the servers' middleware relies on.
func TestTraceParentSentOnWire(t *testing.T) {
	var headers []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		headers = append(headers, r.Header.Get(obs.TraceParentHeader))
		if r.URL.Path == "/moved" {
			http.Redirect(w, r, "/final", http.StatusFound)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	tr := obs.NewTracer(8)
	tr.Seed = 99
	ctx := obs.WithTracer(context.Background(), tr)
	c := New(&HTTPTransport{})
	if _, err := c.Get(ctx, srv.URL+"/moved"); err != nil {
		t.Fatal(err)
	}

	if len(headers) != 2 {
		t.Fatalf("server saw %d requests, want 2 (redirect hop)", len(headers))
	}
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "webclient.fetch" {
		t.Fatalf("client spans = %+v", spans)
	}
	for i, h := range headers {
		sc, ok := obs.Extract(h)
		if !ok {
			t.Fatalf("hop %d header %q does not parse", i, h)
		}
		if sc.Trace != spans[0].Trace {
			t.Errorf("hop %d trace = %s, want %s", i, sc.Trace, spans[0].Trace)
		}
		if sc.SpanID != spans[0].ID {
			t.Errorf("hop %d span id = %x, want the fetch span %x", i, sc.SpanID, spans[0].ID)
		}
	}
}

// TestTraceParentNestsUnderCaller checks the wire header names the fetch
// span, and the fetch span in turn parents under the caller's span — so a
// server joining via the header lands in the caller's trace.
func TestTraceParentNestsUnderCaller(t *testing.T) {
	var seen string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = r.Header.Get(obs.TraceParentHeader)
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	tr := obs.NewTracer(8)
	tr.Seed = 3
	ctx, outer := obs.StartSpan(obs.WithTracer(context.Background(), tr), "sweep.check")
	c := New(&HTTPTransport{})
	if _, err := c.Get(ctx, srv.URL+"/x"); err != nil {
		t.Fatal(err)
	}
	outer.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	fetch, root := spans[0], spans[1] // fetch ends first
	if fetch.Name != "webclient.fetch" || root.Name != "sweep.check" {
		t.Fatalf("span order = %s, %s", fetch.Name, root.Name)
	}
	if fetch.Parent != root.ID || fetch.Trace != root.Trace {
		t.Errorf("fetch span not nested under caller: %+v vs %+v", fetch, root)
	}
	sc, ok := obs.Extract(seen)
	if !ok || sc.Trace != root.Trace || sc.SpanID != fetch.ID {
		t.Errorf("wire header %q = %+v, want trace %s span %x", seen, sc, root.Trace, fetch.ID)
	}
}
