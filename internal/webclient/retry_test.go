package webclient

import (
	"context"
	"errors"
	"testing"
	"time"

	"aide/internal/obs"
	"aide/internal/simclock"
)

// scriptTransport answers each attempt from a fixed script of outcomes
// and counts how many attempts were made.
type scriptTransport struct {
	script []func() (*Response, error)
	calls  int
}

func (s *scriptTransport) RoundTrip(_ context.Context, _ *Request) (*Response, error) {
	i := s.calls
	s.calls++
	if i >= len(s.script) {
		i = len(s.script) - 1
	}
	return s.script[i]()
}

func ok() (*Response, error)        { return &Response{Status: 200, Body: "hello"}, nil }
func fail() (*Response, error)      { return nil, errors.New("connection refused") }
func serverErr() (*Response, error) { return &Response{Status: 503}, nil }
func notFound() (*Response, error)  { return &Response{Status: 404}, nil }

// retryClient wires a script to a client with retry paced by a simulated
// clock, so backoff spends simulated — not wall — time.
func retryClient(script ...func() (*Response, error)) (*Client, *scriptTransport, *simclock.Sim) {
	st := &scriptTransport{script: script}
	clock := simclock.New(time.Time{})
	c := New(st)
	c.Retry = RetryPolicy{MaxAttempts: 3, BaseDelay: time.Second, MaxDelay: 30 * time.Second}
	c.Clock = clock
	return c, st, clock
}

func TestRetryTransientErrorThenSuccess(t *testing.T) {
	c, st, clock := retryClient(fail, fail, ok)
	info, err := c.Get(context.Background(), "http://h/p")
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != 200 || info.Body != "hello" {
		t.Errorf("info = %+v", info)
	}
	if st.calls != 3 {
		t.Errorf("attempts = %d, want 3", st.calls)
	}
	// Jitter is zero, so the backoff schedule is exactly 1s + 2s.
	if got := clock.Now().Sub(simclock.Epoch); got != 3*time.Second {
		t.Errorf("simulated backoff = %v, want 3s", got)
	}
}

func TestRetryServerErrorThenSuccess(t *testing.T) {
	c, st, _ := retryClient(serverErr, ok)
	info, err := c.Get(context.Background(), "http://h/p")
	if err != nil || info.Status != 200 {
		t.Fatalf("info = %+v, err = %v", info, err)
	}
	if st.calls != 2 {
		t.Errorf("attempts = %d, want 2", st.calls)
	}
}

func TestRetryExhaustedDeliversLastOutcome(t *testing.T) {
	// Persistent 5xx: the caller gets the final response to Classify.
	c, st, clock := retryClient(serverErr)
	info, err := c.Get(context.Background(), "http://h/p")
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != 503 {
		t.Errorf("status = %d, want 503", info.Status)
	}
	if st.calls != 3 {
		t.Errorf("attempts = %d, want 3", st.calls)
	}
	if got := clock.Now().Sub(simclock.Epoch); got != 3*time.Second {
		t.Errorf("simulated backoff = %v, want 3s", got)
	}

	// Persistent transport error: the error surfaces after the tries.
	c2, st2, _ := retryClient(fail)
	if _, err := c2.Get(context.Background(), "http://h/p"); err == nil {
		t.Error("persistent transport error not returned")
	}
	if st2.calls != 3 {
		t.Errorf("attempts = %d, want 3", st2.calls)
	}
}

func TestRetrySkipsNonTransientStatuses(t *testing.T) {
	c, st, clock := retryClient(notFound)
	info, err := c.Get(context.Background(), "http://h/p")
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != 404 {
		t.Errorf("status = %d", info.Status)
	}
	if st.calls != 1 {
		t.Errorf("attempts = %d, want 1 (404 is not transient)", st.calls)
	}
	if got := clock.Now().Sub(simclock.Epoch); got != 0 {
		t.Errorf("backoff slept %v for a non-retried status", got)
	}
}

func TestRetryDisabledByZeroPolicy(t *testing.T) {
	st := &scriptTransport{script: []func() (*Response, error){fail}}
	c := New(st)
	if _, err := c.Get(context.Background(), "http://h/p"); err == nil {
		t.Error("error swallowed")
	}
	if st.calls != 1 {
		t.Errorf("attempts = %d, want 1 (zero policy)", st.calls)
	}
}

func TestRetryBackoffCappedByMaxDelay(t *testing.T) {
	c, _, clock := retryClient(serverErr)
	c.Retry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Second, MaxDelay: 2 * time.Second}
	if _, err := c.Get(context.Background(), "http://h/p"); err != nil {
		t.Fatal(err)
	}
	// Pauses: 1s, then 2s (capped), then 2s (capped) = 5s.
	if got := clock.Now().Sub(simclock.Epoch); got != 5*time.Second {
		t.Errorf("simulated backoff = %v, want 5s", got)
	}
}

func TestRetryJitterDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) time.Duration {
		c, _, clock := retryClient(serverErr)
		c.Retry = RetryPolicy{MaxAttempts: 3, BaseDelay: time.Second, Jitter: 0.5, Seed: seed}
		if _, err := c.Get(context.Background(), "http://h/p"); err != nil {
			t.Fatal(err)
		}
		return clock.Now().Sub(simclock.Epoch)
	}
	a, b := run(7), run(7)
	if a != b {
		t.Errorf("same seed, different schedules: %v vs %v", a, b)
	}
	// Jitter only ever shortens the pause: total in (1.5s, 3s].
	if a <= 1500*time.Millisecond || a > 3*time.Second {
		t.Errorf("jittered total %v outside (1.5s, 3s]", a)
	}
	if c := run(8); c == a {
		t.Errorf("different seeds produced identical schedule %v", c)
	}
}

func TestRetryStopsWhenContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	st := &scriptTransport{}
	st.script = []func() (*Response, error){func() (*Response, error) {
		cancel() // the caller loses interest mid-flight
		return nil, errors.New("connection reset")
	}}
	c := New(st)
	c.Retry = RetryPolicy{MaxAttempts: 5, BaseDelay: time.Second}
	c.Clock = simclock.New(time.Time{})
	if _, err := c.Get(ctx, "http://h/p"); err == nil {
		t.Error("canceled fetch reported success")
	}
	if st.calls != 1 {
		t.Errorf("attempts = %d, want 1 (no retry after cancel)", st.calls)
	}
}

func TestRetryRefusesCanceledContextUpFront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c, st, _ := retryClient(ok)
	if _, err := c.Get(ctx, "http://h/p"); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if st.calls != 0 {
		t.Errorf("attempts = %d, want 0", st.calls)
	}
}

// TestRetryStatsOnPageInfo checks the attempt count and total backoff
// are surfaced on the result, so callers need not sniff logs.
func TestRetryStatsOnPageInfo(t *testing.T) {
	c, _, _ := retryClient(fail, serverErr, ok)
	info, err := c.Get(context.Background(), "http://h/p")
	if err != nil {
		t.Fatal(err)
	}
	if info.Attempts != 3 {
		t.Errorf("info.Attempts = %d, want 3", info.Attempts)
	}
	// Jitter is zero: the schedule is exactly 1s + 2s.
	if info.BackoffTotal != 3*time.Second {
		t.Errorf("info.BackoffTotal = %v, want 3s", info.BackoffTotal)
	}
}

// TestRetryStatsAcrossRedirects checks attempts accumulate over hops.
func TestRetryStatsAcrossRedirects(t *testing.T) {
	redirect := func() (*Response, error) {
		return &Response{Status: 302, Location: "http://h/new"}, nil
	}
	c, _, _ := retryClient(redirect, fail, ok)
	info, err := c.Get(context.Background(), "http://h/old")
	if err != nil {
		t.Fatal(err)
	}
	if info.URL != "http://h/new" || info.Redirected != 1 {
		t.Fatalf("info = %+v", info)
	}
	if info.Attempts != 3 { // 1 redirect hop + 1 failure + 1 success
		t.Errorf("info.Attempts = %d, want 3", info.Attempts)
	}
	if info.BackoffTotal != time.Second {
		t.Errorf("info.BackoffTotal = %v, want 1s", info.BackoffTotal)
	}
}

// TestRetryMetrics checks the per-cause retry counters and the attempt
// histogram land in the client's injected registry.
func TestRetryMetrics(t *testing.T) {
	c, _, _ := retryClient(fail, serverErr, ok)
	c.Metrics = obs.NewRegistry()
	if _, err := c.Get(context.Background(), "http://h/p"); err != nil {
		t.Fatal(err)
	}
	snap := c.Metrics.Snapshot()
	want := map[string]int64{
		"webclient.attempts":          3,
		"webclient.retries":           2,
		"webclient.retries.transport": 1,
		"webclient.retries.status":    1,
	}
	for name, n := range want {
		if snap.Counters[name] != n {
			t.Errorf("%s = %d, want %d", name, snap.Counters[name], n)
		}
	}
	if got := snap.Histograms["webclient.attempt.duration"].Count; got != 3 {
		t.Errorf("attempt histogram count = %d, want 3", got)
	}
}

// TestCancelMetric checks a mid-retry cancellation is counted.
func TestCancelMetric(t *testing.T) {
	c, _, _ := retryClient(fail)
	c.Metrics = obs.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Get(ctx, "http://h/p"); err == nil {
		t.Fatal("want error from canceled context")
	}
	if got := c.Metrics.Counter("webclient.cancels").Value(); got == 0 {
		t.Error("webclient.cancels = 0, want nonzero")
	}
}
