package webclient

import (
	"context"
	"errors"
	"testing"
	"time"

	"aide/internal/breaker"
	"aide/internal/obs"
	"aide/internal/simclock"
)

func serverErrWithRetryAfter(d time.Duration) func() (*Response, error) {
	return func() (*Response, error) {
		return &Response{Status: 503, RetryAfter: d}, nil
	}
}

func TestRetryHonorsRetryAfter(t *testing.T) {
	c, st, clock := retryClient(serverErrWithRetryAfter(7*time.Second), ok)
	m := obs.NewRegistry()
	c.Metrics = m
	info, err := c.Get(context.Background(), "http://h/p")
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != 200 || st.calls != 2 {
		t.Fatalf("status %d after %d attempts", info.Status, st.calls)
	}
	// The server's hint (7s) replaces the 1s backoff for that retry.
	if got := clock.Now().Sub(simclock.Epoch); got != 7*time.Second {
		t.Errorf("pause = %v, want the advertised 7s", got)
	}
	if n := m.Counter("webclient.retries.retry-after").Value(); n != 1 {
		t.Errorf("retry-after cause counter = %d, want 1", n)
	}
	if n := m.Counter("webclient.retries.status").Value(); n != 0 {
		t.Errorf("status cause counter = %d, want 0 (cause is retry-after)", n)
	}
}

func TestRetryAfterCappedByMaxDelay(t *testing.T) {
	c, _, clock := retryClient(serverErrWithRetryAfter(10*time.Minute), ok)
	c.Retry.MaxDelay = 20 * time.Second
	if _, err := c.Get(context.Background(), "http://h/p"); err != nil {
		t.Fatal(err)
	}
	if got := clock.Now().Sub(simclock.Epoch); got != 20*time.Second {
		t.Errorf("pause = %v, want MaxDelay cap of 20s", got)
	}
}

func TestRetryAfterIgnoredOnOtherStatuses(t *testing.T) {
	// A Retry-After on a non-503 response must not change the schedule.
	c, _, clock := retryClient(func() (*Response, error) {
		return &Response{Status: 500, RetryAfter: time.Hour}, nil
	}, ok)
	if _, err := c.Get(context.Background(), "http://h/p"); err != nil {
		t.Fatal(err)
	}
	if got := clock.Now().Sub(simclock.Epoch); got != time.Second {
		t.Errorf("pause = %v, want the normal 1s backoff", got)
	}
}

// breakerClient wires a scripted transport to a client with per-host
// breakers on a simulated clock and retries disabled, so each Get is
// exactly one attempt.
func breakerClient(cfg breaker.Config, script ...func() (*Response, error)) (*Client, *scriptTransport, *simclock.Sim) {
	st := &scriptTransport{script: script}
	clock := simclock.New(time.Time{})
	c := New(st)
	c.Clock = clock
	c.Breakers = breaker.NewSet(cfg)
	c.Breakers.Clock = clock
	return c, st, clock
}

func TestBreakerTripsAndFailsFast(t *testing.T) {
	cfg := breaker.Config{FailureThreshold: 3, Cooldown: time.Minute}
	c, st, _ := breakerClient(cfg, fail)
	m := obs.NewRegistry()
	c.Metrics = m
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := c.Get(ctx, "http://bad.example.com/p"); err == nil {
			t.Fatal("scripted failure succeeded")
		}
	}
	if st.calls != 3 {
		t.Fatalf("wire attempts before trip = %d, want 3", st.calls)
	}
	// Tripped: the next request is rejected without touching the wire.
	_, err := c.Get(ctx, "http://bad.example.com/p")
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if kind := Classify(0, err); kind != Tripped {
		t.Errorf("Classify = %v, want Tripped", kind)
	}
	if st.calls != 3 {
		t.Errorf("wire attempts after trip = %d, want still 3", st.calls)
	}
	if n := m.Counter("webclient.breaker.short_circuits").Value(); n != 1 {
		t.Errorf("short-circuit counter = %d, want 1", n)
	}
}

func TestBreakerRecoversAfterCooldown(t *testing.T) {
	cfg := breaker.Config{FailureThreshold: 2, Cooldown: time.Minute}
	c, _, clock := breakerClient(cfg, fail, fail, ok)
	ctx := context.Background()
	c.Get(ctx, "http://flaky.example.com/p")
	c.Get(ctx, "http://flaky.example.com/p")
	if _, err := c.Get(ctx, "http://flaky.example.com/p"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("breaker not open after threshold: %v", err)
	}
	clock.Advance(time.Minute)
	// Half-open: the probe goes through, succeeds, and closes the breaker.
	info, err := c.Get(ctx, "http://flaky.example.com/p")
	if err != nil || info.Status != 200 {
		t.Fatalf("probe after cooldown: info=%+v err=%v", info, err)
	}
	if got := c.Breakers.For("flaky.example.com").State(); got != breaker.Closed {
		t.Errorf("state after successful probe = %v, want Closed", got)
	}
}

func TestBreakerScopedPerHost(t *testing.T) {
	cfg := breaker.Config{FailureThreshold: 1, Cooldown: time.Minute}
	st := &scriptTransport{script: []func() (*Response, error){fail, ok}}
	c := New(st)
	c.Clock = simclock.New(time.Time{})
	c.Breakers = breaker.NewSet(cfg)
	ctx := context.Background()
	c.Get(ctx, "http://dead.example.com/p")
	// A different host is unaffected by dead.example.com's open breaker.
	info, err := c.Get(ctx, "http://fine.example.com/p")
	if err != nil || info.Status != 200 {
		t.Fatalf("healthy host blocked: info=%+v err=%v", info, err)
	}
}

func Test5xxCountsAsHostFailure(t *testing.T) {
	cfg := breaker.Config{FailureThreshold: 2, Cooldown: time.Minute}
	c, _, _ := breakerClient(cfg, serverErr, serverErr, ok)
	ctx := context.Background()
	c.Get(ctx, "http://h/p")
	c.Get(ctx, "http://h/p")
	if _, err := c.Get(ctx, "http://h/p"); !errors.Is(err, ErrBreakerOpen) {
		t.Errorf("5xx responses did not trip the breaker: %v", err)
	}
}

func Test4xxProvesHostAlive(t *testing.T) {
	cfg := breaker.Config{FailureThreshold: 2, Cooldown: time.Minute}
	c, _, _ := breakerClient(cfg, notFound)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		c.Get(ctx, "http://h/p")
	}
	if got := c.Breakers.For("h").State(); got != breaker.Closed {
		t.Errorf("404s tripped the breaker (state %v); they prove the host alive", got)
	}
}
