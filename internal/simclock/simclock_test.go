package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestSimStartsAtEpochByDefault(t *testing.T) {
	s := New(time.Time{})
	if !s.Now().Equal(Epoch) {
		t.Errorf("Now = %v, want %v", s.Now(), Epoch)
	}
	custom := time.Date(1996, 1, 22, 9, 0, 0, 0, time.UTC)
	if got := New(custom).Now(); !got.Equal(custom) {
		t.Errorf("custom start = %v", got)
	}
}

func TestAdvance(t *testing.T) {
	s := New(time.Time{})
	t0 := s.Now()
	t1 := s.Advance(36 * time.Hour)
	if t1.Sub(t0) != 36*time.Hour || !s.Now().Equal(t1) {
		t.Errorf("advance: %v -> %v", t0, t1)
	}
	// Negative advances are ignored: simulated time is monotonic.
	t2 := s.Advance(-time.Hour)
	if !t2.Equal(t1) {
		t.Errorf("negative advance moved the clock: %v", t2)
	}
}

func TestSetOnlyMovesForward(t *testing.T) {
	s := New(time.Time{})
	future := s.Now().Add(time.Hour)
	if got := s.Set(future); !got.Equal(future) {
		t.Errorf("Set forward = %v", got)
	}
	past := future.Add(-2 * time.Hour)
	if got := s.Set(past); !got.Equal(future) {
		t.Errorf("Set backward moved the clock: %v", got)
	}
}

func TestWallClock(t *testing.T) {
	before := time.Now()
	got := Wall{}.Now()
	if got.Before(before.Add(-time.Second)) || got.After(time.Now().Add(time.Second)) {
		t.Errorf("wall Now = %v", got)
	}
}

func TestSimConcurrent(t *testing.T) {
	s := New(time.Time{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Advance(time.Millisecond)
				s.Now()
			}
		}()
	}
	wg.Wait()
	if got := s.Now().Sub(Epoch); got != 8*time.Second {
		t.Errorf("total advance = %v, want 8s", got)
	}
}
