// Package simclock provides a clock abstraction so that the tracker, the
// snapshot repository, and the synthetic web can run against either real
// time or a deterministic simulated time line.
//
// The paper's experiments span days to months of wall time (daily w3newer
// runs, half a year of archive growth); a simulated clock lets the
// reproduction compress those spans into milliseconds while keeping every
// timestamp-dependent code path (thresholds, staleness, Last-Modified
// comparisons, RCS datestamps) exercised with realistic values.
package simclock

import (
	"context"
	"sync"
	"time"
)

// Clock is the minimal time source used throughout AIDE.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
}

// Wall is a Clock backed by the real system time.
type Wall struct{}

// Now returns time.Now.
func (Wall) Now() time.Time { return time.Now() }

// Sim is a deterministic, manually advanced clock. The zero value is not
// usable; construct one with New. Sim is safe for concurrent use.
type Sim struct {
	mu  sync.Mutex
	now time.Time
}

// Epoch is the default starting instant for simulated clocks: the rough
// date of the paper's measurements (late 1995).
var Epoch = time.Date(1995, time.September, 29, 12, 0, 0, 0, time.UTC)

// New returns a simulated clock starting at the given instant. If start is
// the zero time, the clock starts at Epoch.
func New(start time.Time) *Sim {
	if start.IsZero() {
		start = Epoch
	}
	return &Sim{now: start}
}

// Now returns the current simulated time.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Advance moves the clock forward by d and returns the new time. Negative
// durations are ignored: simulated time never runs backwards.
func (s *Sim) Advance(d time.Duration) time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d > 0 {
		s.now = s.now.Add(d)
	}
	return s.now
}

// Set jumps the clock to t if t is later than the current time, and
// returns the (possibly unchanged) current time.
func (s *Sim) Set(t time.Time) time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.After(s.now) {
		s.now = t
	}
	return s.now
}

// advancer is implemented by clocks whose waits are simulated rather
// than real (*Sim): sleeping advances the clock instead of blocking.
type advancer interface {
	Advance(d time.Duration) time.Time
}

// Sleep waits for d on the given clock, honouring ctx. On a simulated
// clock the wait consumes simulated time and returns immediately, which
// keeps retry/backoff schedules deterministic in tests; on the wall
// clock it blocks for real. A done context cuts the wait short and its
// error is returned.
func Sleep(ctx context.Context, c Clock, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	if a, ok := c.(advancer); ok {
		a.Advance(d)
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
