package textdiff

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func lines(s ...string) []string { return s }

func TestLinesJoinRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"one\n",
		"one\ntwo\n",
		"one\n\nthree\n",
	}
	for _, c := range cases {
		if got := Join(Lines(c)); got != c {
			t.Errorf("Join(Lines(%q)) = %q", c, got)
		}
	}
	// Without a trailing newline the round trip normalises; the flag
	// records the difference.
	if HasTrailingNewline("a\nb") {
		t.Error("HasTrailingNewline(a\\nb) = true")
	}
	if !HasTrailingNewline("a\nb\n") {
		t.Error("HasTrailingNewline(a\\nb\\n) = false")
	}
	if got := Join(Lines("a\nb")); got != "a\nb\n" {
		t.Errorf("Join(Lines(a\\nb)) = %q", got)
	}
}

func TestDiffIdentical(t *testing.T) {
	a := lines("x", "y", "z")
	hunks := Diff(a, a)
	if len(hunks) != 1 || hunks[0].Kind != Equal {
		t.Fatalf("want single Equal hunk, got %v", hunks)
	}
}

func TestDiffKinds(t *testing.T) {
	a := lines("keep1", "del", "keep2")
	b := lines("keep1", "keep2", "new")
	hunks := Diff(a, b)
	var kinds []OpKind
	for _, h := range hunks {
		kinds = append(kinds, h.Kind)
	}
	want := []OpKind{Equal, Delete, Equal, Insert}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("kinds = %v, want %v (hunks %+v)", kinds, want, hunks)
	}
	add, del := Stats(hunks)
	if add != 1 || del != 1 {
		t.Errorf("Stats = (%d,%d), want (1,1)", add, del)
	}
}

func TestDiffReplace(t *testing.T) {
	a := lines("a", "old", "z")
	b := lines("a", "new", "z")
	hunks := Diff(a, b)
	found := false
	for _, h := range hunks {
		if h.Kind == Replace {
			found = true
			if h.AHi-h.ALo != 1 || h.BHi-h.BLo != 1 {
				t.Errorf("replace ranges wrong: %+v", h)
			}
		}
	}
	if !found {
		t.Fatalf("no Replace hunk in %+v", hunks)
	}
}

// coverInvariant checks the hunk list fully covers both inputs in order.
func coverInvariant(t *testing.T, a, b []string, hunks []Hunk) {
	t.Helper()
	ai, bi := 0, 0
	for _, h := range hunks {
		if h.ALo != ai || h.BLo != bi {
			t.Fatalf("gap before hunk %+v (ai=%d bi=%d)", h, ai, bi)
		}
		if h.AHi < h.ALo || h.BHi < h.BLo {
			t.Fatalf("inverted hunk %+v", h)
		}
		if h.Kind == Equal {
			if h.AHi-h.ALo != h.BHi-h.BLo {
				t.Fatalf("unequal Equal hunk %+v", h)
			}
			for k := 0; k < h.AHi-h.ALo; k++ {
				if a[h.ALo+k] != b[h.BLo+k] {
					t.Fatalf("Equal hunk content mismatch at %d", k)
				}
			}
		}
		ai, bi = h.AHi, h.BHi
	}
	if ai != len(a) || bi != len(b) {
		t.Fatalf("hunks do not cover inputs: end (%d,%d) want (%d,%d)", ai, bi, len(a), len(b))
	}
}

func randLines(r *rand.Rand, n int) []string {
	words := []string{"alpha", "beta", "gamma", "delta", "", "epsilon"}
	out := make([]string, n)
	for i := range out {
		out[i] = words[r.Intn(len(words))]
	}
	return out
}

func TestPropertyDiffCoversAndApplies(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		a := randLines(r, r.Intn(40))
		b := randLines(r, r.Intn(40))
		hunks := Diff(a, b)
		coverInvariant(t, a, b, hunks)
		script := EdScript(a, b)
		got, err := ApplyEd(a, script)
		if err != nil {
			t.Fatalf("trial %d: ApplyEd: %v\nscript:\n%s", trial, err, script)
		}
		if !reflect.DeepEqual(normalize(got), normalize(b)) {
			t.Fatalf("trial %d: ApplyEd mismatch\n a=%q\n b=%q\n got=%q\nscript:\n%s",
				trial, a, b, got, script)
		}
	}
}

func normalize(s []string) []string {
	if len(s) == 0 {
		return nil
	}
	return s
}

func TestQuickEdRoundTrip(t *testing.T) {
	f := func(ra, rb []byte) bool {
		a := bytesToLines(ra)
		b := bytesToLines(rb)
		got, err := ApplyEd(a, EdScript(a, b))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(normalize(got), normalize(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func bytesToLines(raw []byte) []string {
	if len(raw) > 48 {
		raw = raw[:48]
	}
	out := make([]string, len(raw))
	for i, c := range raw {
		out[i] = strings.Repeat(string(rune('a'+int(c)%5)), 1+int(c)%3)
	}
	return out
}

func TestEdScriptEmptyForIdentical(t *testing.T) {
	a := lines("same", "same2")
	if s := EdScript(a, a); s != "" {
		t.Errorf("EdScript identical = %q, want empty", s)
	}
}

func TestApplyEdErrors(t *testing.T) {
	a := lines("one", "two")
	cases := []string{
		"x1 1\n",        // unknown op
		"d0 1\n",        // line < 1
		"d2 5\n",        // delete past end
		"a9 1\nzz\n",    // append past end
		"a1 3\nonly\n",  // truncated insert block
		"d1 1\nd1 1\n",  // overlapping deletes
		"d1 2\na1 1\nx", // append into deleted range
	}
	for _, c := range cases {
		if _, err := ApplyEd(a, c); err == nil {
			t.Errorf("ApplyEd(%q) succeeded, want error", c)
		}
	}
}

func TestUnifiedBasic(t *testing.T) {
	a := lines("ctx1", "ctx2", "old", "ctx3", "ctx4")
	b := lines("ctx1", "ctx2", "new", "ctx3", "ctx4")
	u := Unified("a.txt", "b.txt", a, b, 1)
	for _, want := range []string{"--- a.txt", "+++ b.txt", "-old", "+new", " ctx2", " ctx3"} {
		if !strings.Contains(u, want) {
			t.Errorf("unified output missing %q:\n%s", want, u)
		}
	}
	if strings.Contains(u, "ctx1") {
		t.Errorf("unified output includes line outside context window:\n%s", u)
	}
}

func TestUnifiedIdenticalEmpty(t *testing.T) {
	a := lines("x")
	if u := Unified("a", "b", a, a, 3); u != "" {
		t.Errorf("identical unified = %q", u)
	}
}

func TestUnifiedHeaderRanges(t *testing.T) {
	a := lines("1", "2", "3")
	b := lines("1", "2", "3", "4")
	u := Unified("a", "b", a, b, 0)
	if !strings.Contains(u, "@@ -3,0 +4 @@") {
		t.Errorf("unexpected hunk header:\n%s", u)
	}
}

func BenchmarkDiff1000Lines(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	a := randLines(r, 1000)
	bb := append([]string(nil), a...)
	for i := 0; i < len(bb); i += 20 {
		bb[i] = "CHANGED-" + bb[i]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Diff(a, bb)
	}
}

func BenchmarkEdScriptApply(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	a := randLines(r, 1000)
	bb := append([]string(nil), a...)
	for i := 0; i < len(bb); i += 20 {
		bb[i] = "CHANGED-" + bb[i]
	}
	script := EdScript(a, bb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ApplyEd(a, script); err != nil {
			b.Fatal(err)
		}
	}
}
