package textdiff

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzEdRoundTrip: for any two line sets, the ed script from a to b must
// apply cleanly and reproduce b.
func FuzzEdRoundTrip(f *testing.F) {
	f.Add("a\nb\nc", "a\nc\nd")
	f.Add("", "x")
	f.Add("same", "same")
	f.Add("1\n2\n3\n4\n5", "5\n4\n3\n2\n1")
	f.Fuzz(func(t *testing.T, rawA, rawB string) {
		a := strings.Split(rawA, "\n")
		b := strings.Split(rawB, "\n")
		got, err := ApplyEd(a, EdScript(a, b))
		if err != nil {
			t.Fatalf("ApplyEd: %v", err)
		}
		if !reflect.DeepEqual(got, b) {
			t.Fatalf("round trip:\n a=%q\n b=%q\n got=%q", a, b, got)
		}
	})
}

// FuzzApplyEdArbitraryScript: arbitrary scripts must be rejected or
// applied without panicking.
func FuzzApplyEdArbitraryScript(f *testing.F) {
	f.Add("line1\nline2", "d1 1\n")
	f.Add("x", "a0 1\nnew\n")
	f.Add("x", "not a script")
	f.Fuzz(func(t *testing.T, rawA, script string) {
		a := strings.Split(rawA, "\n")
		_, _ = ApplyEd(a, script)
	})
}
