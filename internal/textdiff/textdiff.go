// Package textdiff provides line-oriented differencing in the style of
// UNIX diff (Hunt–McIlroy): hunks, unified output for humans, and
// RCS-style "diff -n" ed scripts, which are the delta representation used
// by the internal/rcs archive. It also applies ed scripts, which is how
// the archive reconstructs old revisions from the head.
package textdiff

import (
	"fmt"
	"strconv"
	"strings"

	"aide/internal/lcs"
)

// OpKind classifies a hunk.
type OpKind int

// Hunk kinds. Equal hunks are present so that the hunk list fully covers
// both inputs.
const (
	Equal OpKind = iota
	Delete
	Insert
	Replace
)

// String returns a short mnemonic for the kind.
func (k OpKind) String() string {
	switch k {
	case Equal:
		return "equal"
	case Delete:
		return "delete"
	case Insert:
		return "insert"
	case Replace:
		return "replace"
	}
	return "unknown"
}

// Hunk describes one region of the alignment: lines ALo:AHi of the old
// text correspond to lines BLo:BHi of the new text (half-open, 0-based).
// For Equal hunks the two ranges have equal length and identical content;
// for Delete hunks the B range is empty; for Insert hunks the A range is
// empty; Replace hunks have both non-empty.
type Hunk struct {
	Kind     OpKind
	ALo, AHi int
	BLo, BHi int
}

// Lines splits text into lines, dropping the line terminators. An empty
// string yields no lines. A trailing newline does not create a final empty
// line; callers that must round-trip exactly should track the trailing
// newline separately (see HasTrailingNewline).
func Lines(text string) []string {
	if text == "" {
		return nil
	}
	text = strings.TrimSuffix(text, "\n")
	return strings.Split(text, "\n")
}

// HasTrailingNewline reports whether text ends in a newline. Join(Lines(t))
// reconstructs t exactly only when this is true (or t is empty).
func HasTrailingNewline(text string) bool {
	return strings.HasSuffix(text, "\n")
}

// Join reassembles lines into a text with a newline after every line.
func Join(lines []string) string {
	if len(lines) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, l := range lines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Diff computes the hunks aligning a with b. The returned hunks cover
// both inputs completely and alternate between Equal and non-Equal kinds.
func Diff(a, b []string) []Hunk {
	pairs := lcs.Strings(a, b)
	var hunks []Hunk
	ai, bi := 0, 0
	flush := func(aHi, bHi int) {
		if ai == aHi && bi == bHi {
			return
		}
		k := Replace
		switch {
		case ai == aHi:
			k = Insert
		case bi == bHi:
			k = Delete
		}
		hunks = append(hunks, Hunk{Kind: k, ALo: ai, AHi: aHi, BLo: bi, BHi: bHi})
		ai, bi = aHi, bHi
	}
	for i := 0; i < len(pairs); {
		p := pairs[i]
		flush(p.AIdx, p.BIdx)
		// Extend a run of consecutive matches into one Equal hunk.
		j := i + 1
		for j < len(pairs) && pairs[j].AIdx == pairs[j-1].AIdx+1 && pairs[j].BIdx == pairs[j-1].BIdx+1 {
			j++
		}
		n := j - i
		hunks = append(hunks, Hunk{Kind: Equal, ALo: ai, AHi: ai + n, BLo: bi, BHi: bi + n})
		ai += n
		bi += n
		i = j
	}
	flush(len(a), len(b))
	return hunks
}

// Stats returns the number of inserted and deleted lines implied by hunks.
func Stats(hunks []Hunk) (added, deleted int) {
	for _, h := range hunks {
		if h.Kind == Equal {
			continue
		}
		deleted += h.AHi - h.ALo
		added += h.BHi - h.BLo
	}
	return added, deleted
}

// Unified renders hunks in unified diff format with the given number of
// context lines, using aName and bName in the header. It returns the empty
// string when the inputs are identical.
func Unified(aName, bName string, a, b []string, context int) string {
	hunks := Diff(a, b)
	if isAllEqual(hunks) {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s\n+++ %s\n", aName, bName)
	// Group non-equal hunks whose gaps are within 2*context lines.
	groups := groupHunks(hunks, context)
	for _, g := range groups {
		aLo, aHi := g[0].ALo, g[len(g)-1].AHi
		bLo, bHi := g[0].BLo, g[len(g)-1].BHi
		// Widen by context within bounds.
		cALo, cBLo := maxInt(0, aLo-context), maxInt(0, bLo-context)
		ext := minInt(aLo-cALo, bLo-cBLo)
		cALo, cBLo = aLo-ext, bLo-ext
		cAHi := minInt(len(a), aHi+context)
		cBHi := minInt(len(b), bHi+context)
		ext = minInt(cAHi-aHi, cBHi-bHi)
		cAHi, cBHi = aHi+ext, bHi+ext
		fmt.Fprintf(&sb, "@@ -%s +%s @@\n", rangeSpec(cALo, cAHi), rangeSpec(cBLo, cBHi))
		// Leading context.
		for i := cALo; i < aLo; i++ {
			sb.WriteString(" " + a[i] + "\n")
		}
		for _, h := range g {
			switch h.Kind {
			case Equal:
				for i := h.ALo; i < h.AHi; i++ {
					sb.WriteString(" " + a[i] + "\n")
				}
			default:
				for i := h.ALo; i < h.AHi; i++ {
					sb.WriteString("-" + a[i] + "\n")
				}
				for i := h.BLo; i < h.BHi; i++ {
					sb.WriteString("+" + b[i] + "\n")
				}
			}
		}
		// Trailing context.
		for i := aHi; i < cAHi; i++ {
			sb.WriteString(" " + a[i] + "\n")
		}
	}
	return sb.String()
}

func rangeSpec(lo, hi int) string {
	n := hi - lo
	start := lo + 1
	if n == 0 {
		start = lo
	}
	if n == 1 {
		return strconv.Itoa(start)
	}
	return fmt.Sprintf("%d,%d", start, n)
}

// groupHunks returns runs of hunks in which non-equal hunks separated by
// at most 2*context equal lines are merged into one display group. Equal
// hunks inside a group are retained; pure-equal prefixes/suffixes are not.
func groupHunks(hunks []Hunk, context int) [][]Hunk {
	var groups [][]Hunk
	var cur []Hunk
	for _, h := range hunks {
		if h.Kind == Equal {
			if len(cur) > 0 && h.AHi-h.ALo <= 2*context {
				cur = append(cur, h)
			} else if len(cur) > 0 {
				groups = append(groups, trimEqual(cur))
				cur = nil
			}
			continue
		}
		cur = append(cur, h)
	}
	if len(cur) > 0 {
		groups = append(groups, trimEqual(cur))
	}
	return groups
}

func trimEqual(g []Hunk) []Hunk {
	for len(g) > 0 && g[len(g)-1].Kind == Equal {
		g = g[:len(g)-1]
	}
	return g
}

func isAllEqual(hunks []Hunk) bool {
	for _, h := range hunks {
		if h.Kind != Equal {
			return false
		}
	}
	return true
}

// EdScript renders the differences from a to b in RCS "diff -n" format:
//
//	dL N   delete N lines starting at line L of a (1-based)
//	aL N   append the next N script lines after line L of a
//
// Applying the script to a (with ApplyEd) yields b.
func EdScript(a, b []string) string {
	var sb strings.Builder
	for _, h := range Diff(a, b) {
		switch h.Kind {
		case Equal:
		case Delete:
			fmt.Fprintf(&sb, "d%d %d\n", h.ALo+1, h.AHi-h.ALo)
		case Insert:
			fmt.Fprintf(&sb, "a%d %d\n", h.ALo, h.BHi-h.BLo)
			for i := h.BLo; i < h.BHi; i++ {
				sb.WriteString(b[i] + "\n")
			}
		case Replace:
			fmt.Fprintf(&sb, "d%d %d\n", h.ALo+1, h.AHi-h.ALo)
			fmt.Fprintf(&sb, "a%d %d\n", h.AHi, h.BHi-h.BLo)
			for i := h.BLo; i < h.BHi; i++ {
				sb.WriteString(b[i] + "\n")
			}
		}
	}
	return sb.String()
}

// ApplyEd applies an RCS-format ed script (as produced by EdScript) to a
// and returns the resulting lines. Line numbers in the script refer to the
// original a, so edits are collected first and then applied in one pass.
func ApplyEd(a []string, script string) ([]string, error) {
	type edit struct {
		line int // 1-based position in a
		del  int // lines deleted starting at line
		ins  []string
	}
	var edits []edit
	rest := script
	for rest != "" {
		var cmdLine string
		cmdLine, rest = cutLine(rest)
		if cmdLine == "" {
			continue
		}
		op := cmdLine[0]
		fields := strings.Fields(cmdLine[1:])
		if (op != 'a' && op != 'd') || len(fields) != 2 {
			return nil, fmt.Errorf("textdiff: malformed ed command %q", cmdLine)
		}
		line, err1 := strconv.Atoi(fields[0])
		count, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil || count < 0 || line < 0 {
			return nil, fmt.Errorf("textdiff: malformed ed command %q", cmdLine)
		}
		switch op {
		case 'd':
			// A delete must remove at least one line; a zero count would
			// be indistinguishable from an insert in the apply sweep.
			if count < 1 || line < 1 || line-1+count > len(a) {
				return nil, fmt.Errorf("textdiff: delete out of range in %q (len %d)", cmdLine, len(a))
			}
			edits = append(edits, edit{line: line, del: count})
		case 'a':
			if line > len(a) {
				return nil, fmt.Errorf("textdiff: append past end in %q (len %d)", cmdLine, len(a))
			}
			// A count beyond the script's remaining lines is necessarily
			// truncated; reject before allocating for it.
			if count > strings.Count(rest, "\n")+1 {
				return nil, fmt.Errorf("textdiff: ed script truncated inside %q", cmdLine)
			}
			ins := make([]string, 0, count)
			for i := 0; i < count; i++ {
				if rest == "" {
					return nil, fmt.Errorf("textdiff: ed script truncated inside %q", cmdLine)
				}
				var l string
				l, rest = cutLine(rest)
				ins = append(ins, l)
			}
			// An append after line L happens after any delete at L+1;
			// record it keyed just past the deleted range boundary.
			edits = append(edits, edit{line: line, ins: ins})
		}
	}
	// Apply edits in order of original position. EdScript emits them in
	// ascending, non-overlapping order, so a single sweep suffices.
	out := make([]string, 0, len(a))
	pos := 0 // next unconsumed 0-based line of a
	for _, e := range edits {
		if e.del > 0 {
			start := e.line - 1
			if start < pos {
				return nil, fmt.Errorf("textdiff: overlapping edits at line %d", e.line)
			}
			out = append(out, a[pos:start]...)
			pos = start + e.del
		} else {
			if e.line < pos {
				return nil, fmt.Errorf("textdiff: overlapping edits at line %d", e.line)
			}
			out = append(out, a[pos:e.line]...)
			pos = e.line
			out = append(out, e.ins...)
		}
	}
	out = append(out, a[pos:]...)
	return out, nil
}

func cutLine(s string) (line, rest string) {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i], s[i+1:]
	}
	return s, ""
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
