// Package bench is the root benchmark harness: one testing.B benchmark
// per table/figure of the paper (plus the ablations DESIGN.md calls
// out), at sizes suited to `go test -bench`. The full-scale experiment
// driver with paper-vs-measured output is cmd/aidebench; EXPERIMENTS.md
// maps each benchmark and experiment to the paper's numbers.
package bench

import (
	"context"
	"fmt"
	"math/rand"
	neturl "net/url"
	"strings"
	"testing"
	"time"

	"aide/internal/aide"
	"aide/internal/formreg"
	"aide/internal/hotlist"
	"aide/internal/htmldiff"
	"aide/internal/lcs"
	"aide/internal/notify"
	"aide/internal/obs"
	"aide/internal/proxycache"
	"aide/internal/rcs"
	"aide/internal/sched"
	"aide/internal/simclock"
	"aide/internal/snapshot"
	"aide/internal/textdiff"
	"aide/internal/tracker"
	"aide/internal/w3config"
	"aide/internal/webclient"
	"aide/internal/websim"
	"aide/internal/wiki"
)

// --- Table 1: threshold configuration ---------------------------------------

// BenchmarkTable1ConfigMatch measures per-URL threshold resolution over
// the paper's literal Table 1 rules.
func BenchmarkTable1ConfigMatch(b *testing.B) {
	cfg, err := w3config.ParseString(w3config.Table1)
	if err != nil {
		b.Fatal(err)
	}
	urls := []string{
		"http://www.yahoo.com/Computers/WWW/Indices/",
		"http://www.research.att.com/orgs/ssr/people/douglis/",
		"http://www.usenix.org/events/",
		"file:/home/douglis/notes.html",
		"http://www.unitedmedia.com/comics/dilbert/",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.ThresholdFor(urls[i%len(urls)])
	}
}

// --- Figure 1: the w3newer report --------------------------------------------

// fig1Rig builds a 100-URL mixed-state hotlist over the synthetic web.
func fig1Rig(b *testing.B) (*tracker.Tracker, []hotlist.Entry, *websim.Web) {
	b.Helper()
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	hist := hotlist.NewHistory()
	entries := make([]hotlist.Entry, 0, 100)
	for i := 0; i < 100; i++ {
		host := fmt.Sprintf("h%02d.example.com", i%10)
		path := fmt.Sprintf("/p%d.html", i)
		page := web.Site(host).Page(path)
		if i%3 == 0 {
			web.Evolve(page, 24*time.Hour, websim.AppendGenerator("News", int64(i)))
		} else {
			page.Set(websim.StaticGenerator("Static", 80, int64(i))(0))
		}
		url := "http://" + host + path
		entries = append(entries, hotlist.Entry{URL: url, Title: path})
		hist.Visit(url, clock.Now())
	}
	web.Advance(5 * 24 * time.Hour)
	cfg, err := w3config.ParseString("Default 0\n")
	if err != nil {
		b.Fatal(err)
	}
	return tracker.New(webclient.New(web), cfg, hist, clock), entries, web
}

// BenchmarkFig1TrackerRun measures one w3newer pass over 100 URLs.
func BenchmarkFig1TrackerRun(b *testing.B) {
	tr, entries, _ := fig1Rig(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Run(context.Background(), entries)
	}
}

// BenchmarkFig1Report measures rendering the Figure 1 HTML report.
func BenchmarkFig1Report(b *testing.B) {
	tr, entries, _ := fig1Rig(b)
	results := tr.Run(context.Background(), entries)
	opt := tracker.ReportOptions{SnapshotBase: "http://aide/", User: "u@h", Prioritize: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tracker.Report(results, opt)
	}
}

// --- Figure 2: HtmlDiff -------------------------------------------------------

// BenchmarkFig2HtmlDiff measures the merged-page comparison of the two
// USENIX home-page versions from Figure 2.
func BenchmarkFig2HtmlDiff(b *testing.B) {
	b.SetBytes(int64(len(websim.USENIXSept) + len(websim.USENIXNov)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := htmldiff.Diff(websim.USENIXSept, websim.USENIXNov, htmldiff.Options{})
		if !r.Stats.Changed() {
			b.Fatal("no differences found")
		}
	}
}

// BenchmarkHtmlDiffBySize sweeps document size (the §5 cost curve).
func BenchmarkHtmlDiffBySize(b *testing.B) {
	for _, kb := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("%dKB", kb), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			var sb strings.Builder
			for sb.Len() < kb*1024 {
				fmt.Fprintf(&sb, "<P>%s</P>\n", websim.FillerSentences(rng, 3))
			}
			oldDoc := sb.String()
			newDoc := strings.Replace(oldDoc, "</P>", " edited tail.</P>", 5)
			b.SetBytes(int64(len(oldDoc)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				htmldiff.Diff(oldDoc, newDoc, htmldiff.Options{})
			}
		})
	}
}

// --- §7 storage ---------------------------------------------------------------

// BenchmarkArchiveGrowth measures automatic archival cost: 30 daily
// versions of an editing page checked into one archive.
func BenchmarkArchiveGrowth(b *testing.B) {
	gen := websim.SizedChangeGenerator(950, 60, 1)
	bodies := make([]string, 30)
	for i := range bodies {
		bodies[i] = gen(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		clock := simclock.New(time.Time{})
		arch := rcs.Open(dir+"/page,v", clock)
		b.StartTimer()
		for _, body := range bodies {
			clock.Advance(24 * time.Hour)
			if _, _, err := arch.Checkin(body, "bench", ""); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkArchiveDeepCheckout measures retrieving the oldest revision of
// a deep archive — the §2.2 "time travel" cost. With plain reverse deltas
// this is O(revisions) ed-script applications from the head; forward
// checkpoints inside the archive bound it by the checkpoint interval.
func BenchmarkArchiveDeepCheckout(b *testing.B) {
	gen := websim.SizedChangeGenerator(950, 60, 1)
	dir := b.TempDir()
	clock := simclock.New(time.Time{})
	arch := rcs.Open(dir+"/page,v", clock)
	for i := 0; i < 80; i++ {
		clock.Advance(24 * time.Hour)
		if _, _, err := arch.Checkin(gen(i), "bench", ""); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text, err := arch.Checkout("1.1")
		if err != nil {
			b.Fatal(err)
		}
		if len(text) == 0 {
			b.Fatal("empty checkout")
		}
	}
}

// BenchmarkStorageFullCopyBaseline is the ablation: the same 30 versions
// stored as full copies (what a naive per-user client-side cache does).
func BenchmarkStorageFullCopyBaseline(b *testing.B) {
	gen := websim.SizedChangeGenerator(950, 60, 1)
	bodies := make([]string, 30)
	for i := range bodies {
		bodies[i] = gen(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, body := range bodies {
			copied := strings.Clone(body)
			total += len(copied)
		}
		if total == 0 {
			b.Fatal("no bodies")
		}
	}
}

// --- §3 polling ----------------------------------------------------------------

// pollBench runs one tracker pass per iteration under a threshold regime.
func pollBench(b *testing.B, cfgSrc string, persistent bool) (requests int) {
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	entries := make([]hotlist.Entry, 0, 100)
	for i := 0; i < 100; i++ {
		page := web.Site("h.example").Page(fmt.Sprintf("/p%d", i))
		web.Evolve(page, time.Duration(1+i%7)*24*time.Hour, websim.EditGenerator("P", 6, int64(i)))
		entries = append(entries, hotlist.Entry{URL: page.URL()})
	}
	cfg, err := w3config.ParseString(cfgSrc)
	if err != nil {
		b.Fatal(err)
	}
	hist := hotlist.NewHistory()
	tr := tracker.New(webclient.New(web), cfg, hist, clock)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		web.Advance(24 * time.Hour)
		if !persistent {
			tr = tracker.New(webclient.New(web), cfg, hist, clock)
		}
		tr.Run(context.Background(), entries)
	}
	b.StopTimer()
	h, g := web.TotalRequests()
	return h + g
}

// BenchmarkPollingW3newBaseline: poll every URL on every run.
func BenchmarkPollingW3newBaseline(b *testing.B) {
	reqs := pollBench(b, "Default 0\n", false)
	b.ReportMetric(float64(reqs)/float64(b.N), "requests/run")
}

// BenchmarkPollingW3newer: thresholds plus the persistent state cache.
func BenchmarkPollingW3newer(b *testing.B) {
	reqs := pollBench(b, "Default 2d\n", true)
	b.ReportMetric(float64(reqs)/float64(b.N), "requests/run")
}

// --- §8.3 server-side tracking ---------------------------------------------------

// BenchmarkServerSideTracking measures one shared sweep over 100 URLs
// registered by 20 users (each URL checked once despite 20 interests).
func BenchmarkServerSideTracking(b *testing.B) {
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	client := webclient.New(web)
	fac, err := snapshot.New(b.TempDir(), client, clock)
	if err != nil {
		b.Fatal(err)
	}
	cfg, _ := w3config.ParseString("Default 0\n")
	srv := aide.NewServer(fac, client, cfg, clock)
	for i := 0; i < 100; i++ {
		page := web.Site("pool.example").Page(fmt.Sprintf("/p%d", i))
		web.Evolve(page, 4*24*time.Hour, websim.EditGenerator("Pool", 5, int64(i)))
		for u := 0; u < 20; u++ {
			srv.Register(fmt.Sprintf("u%d@h", u), aide.Registration{URL: page.URL()})
		}
	}
	srv.TrackAll(context.Background()) // cold archive pass
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		web.Advance(24 * time.Hour)
		srv.TrackAll(context.Background())
	}
}

// --- §5 LCS ablation ---------------------------------------------------------------

func lcsInputs() ([]string, []string) {
	rng := rand.New(rand.NewSource(7))
	a := make([]string, 800)
	for i := range a {
		a[i] = fmt.Sprintf("tok%d", rng.Intn(40))
	}
	bq := append([]string(nil), a...)
	for i := 0; i < len(bq); i += 9 {
		bq[i] = "edited"
	}
	return a, bq
}

type eqWeights struct{ a, b []string }

func (w eqWeights) LenA() int { return len(w.a) }
func (w eqWeights) LenB() int { return len(w.b) }
func (w eqWeights) Weight(i, j int) float64 {
	if w.a[i] == w.b[j] {
		return 1
	}
	return 0
}

// BenchmarkLCSHirschberg: the paper's linear-space algorithm.
func BenchmarkLCSHirschberg(b *testing.B) {
	a, bq := lcsInputs()
	w := eqWeights{a, bq}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lcs.Hirschberg(w)
	}
}

// BenchmarkLCSQuadraticDP: the ablation baseline (same optimum, O(n·m)
// space).
func BenchmarkLCSQuadraticDP(b *testing.B) {
	a, bq := lcsInputs()
	w := eqWeights{a, bq}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lcs.DP(w)
	}
}

// BenchmarkLineDiffVsHtmlDiff is the §2.3 ablation: line-based diff is
// ill-suited to HTML (reflowed paragraphs look fully changed), while the
// sentence model sees through the reflow; this measures their costs on
// the same input.
func BenchmarkLineDiffVsHtmlDiff(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	var sb strings.Builder
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&sb, "<P>%s</P>\n", websim.FillerSentences(rng, 3))
	}
	oldDoc := sb.String()
	// Reflow: same content, different line breaks.
	newDoc := strings.ReplaceAll(oldDoc, " ", "\n")
	b.Run("line-diff", func(b *testing.B) {
		aLines := textdiff.Lines(oldDoc)
		bLines := textdiff.Lines(newDoc)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hunks := textdiff.Diff(aLines, bLines)
			add, del := textdiff.Stats(hunks)
			if add == 0 && del == 0 {
				b.Fatal("line diff saw no change (it should: every line moved)")
			}
		}
	})
	b.Run("htmldiff", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := htmldiff.Compare(oldDoc, newDoc, htmldiff.Options{})
			if s.Changed() {
				b.Fatal("htmldiff flagged a pure reflow as a change")
			}
		}
	})
}

// --- §4 RCS + snapshot ------------------------------------------------------------

// BenchmarkSnapshotRemember measures the full Remember path: fetch from
// the synthetic web, check in, update the user control file.
func BenchmarkSnapshotRemember(b *testing.B) {
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	page := web.Site("h").Page("/p")
	web.Evolve(page, 24*time.Hour, websim.AppendGenerator("News", 5))
	fac, err := snapshot.New(b.TempDir(), webclient.New(web), clock)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		web.Advance(24 * time.Hour)
		if _, err := fac.Remember(context.Background(), "bench@h", "http://h/p"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiffCacheHit measures the §4.2 HtmlDiff output cache.
func BenchmarkDiffCacheHit(b *testing.B) {
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	page := web.Site("h").Page("/p")
	page.Set(websim.USENIXSept)
	fac, err := snapshot.New(b.TempDir(), webclient.New(web), clock)
	if err != nil {
		b.Fatal(err)
	}
	fac.Remember(context.Background(), "u@h", "http://h/p")
	clock.Advance(time.Hour)
	page.Set(websim.USENIXNov)
	fac.Remember(context.Background(), "u@h", "http://h/p")
	if _, err := fac.DiffRevs("http://h/p", "1.1", "1.2"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := fac.DiffRevs("http://h/p", "1.1", "1.2")
		if err != nil || !r.Cached {
			b.Fatalf("cache miss: %v cached=%v", err, r.Cached)
		}
	}
}

// BenchmarkProxyOracle measures the proxy-cache daemon's ModInfo path.
func BenchmarkProxyOracle(b *testing.B) {
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	web.Site("h").Page("/p").Set("content")
	proxy := proxycache.New(web, clock)
	if _, err := webclient.New(proxy).Get(context.Background(), "http://h/p"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := proxy.ModInfo("http://h/p"); !ok {
			b.Fatal("oracle miss")
		}
	}
}

// --- §2.1 ablation: checksum vs Last-Modified --------------------------------------

// BenchmarkCheckStrategies compares the two change-detection strategies:
// HEAD + Last-Modified (w3new) vs GET + checksum (URL-minder).
func BenchmarkCheckStrategies(b *testing.B) {
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	withLM := web.Site("h").Page("/static")
	withLM.Set(strings.Repeat("content line\n", 400))
	noLM := web.Site("h").Page("/cgi")
	noLM.Set(strings.Repeat("content line\n", 400))
	noLM.SetNoLastModified()
	client := webclient.New(web)
	b.Run("head-last-modified", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			info, err := client.Check(context.Background(), "http://h/static")
			if err != nil || info.HasBody {
				b.Fatalf("unexpected: %+v %v", info, err)
			}
		}
	})
	b.Run("get-checksum", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			info, err := client.Check(context.Background(), "http://h/cgi")
			if err != nil || !info.HasBody {
				b.Fatalf("unexpected: %+v %v", info, err)
			}
		}
	})
}

// --- extensions: forms, notification, wiki, coalescing, concurrency -----------

// BenchmarkFormInvoke measures replaying a saved POST form (§8.4).
func BenchmarkFormInvoke(b *testing.B) {
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	web.Site("svc").Page("/run").SetForm(func(form neturl.Values, _ int) string {
		return "result for " + form.Get("q")
	})
	reg, err := formreg.New("")
	if err != nil {
		b.Fatal(err)
	}
	saved, err := reg.Save("bench", "http://svc/run", neturl.Values{"q": {"x"}})
	if err != nil {
		b.Fatal(err)
	}
	client := webclient.New(web)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Invoke(context.Background(), client, saved.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNotifyAnnounce measures hub fan-out to 10 relays (§3.1).
func BenchmarkNotifyAnnounce(b *testing.B) {
	clock := simclock.New(time.Time{})
	hub := notify.NewHub(clock)
	defer hub.Close()
	for i := 0; i < 10; i++ {
		hub.Subscribe("http://h/p", notify.NewRelay(clock), false)
	}
	base := simclock.Epoch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hub.Announce("http://h/p", base.Add(time.Duration(i+1)*time.Second))
	}
}

// BenchmarkWikiEdit measures a WebWeaver page save (check-in + control
// file update).
func BenchmarkWikiEdit(b *testing.B) {
	clock := simclock.New(time.Time{})
	fac, err := snapshot.New(b.TempDir(), nil, clock)
	if err != nil {
		b.Fatal(err)
	}
	w := wiki.New(fac, clock)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.Advance(time.Minute)
		body := fmt.Sprintf("<P>revision body number %d with some words.</P>", i)
		if _, err := w.Edit("bench", "BenchPage", body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoalesce measures the §5.3 interspersion rewrite on the
// worst-case alternating-changes input.
func BenchmarkCoalesce(b *testing.B) {
	var oldDoc, newDoc strings.Builder
	for i := 0; i < 50; i++ {
		oldDoc.WriteString(fmt.Sprintf("<P>stable sentence %d. old piece %d goes.</P>\n", i, i))
		newDoc.WriteString(fmt.Sprintf("<P>stable sentence %d. NEW piece %d came.</P>\n", i, i))
	}
	a, bq := oldDoc.String(), newDoc.String()
	b.Run("plain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			htmldiff.Diff(a, bq, htmldiff.Options{})
		}
	})
	b.Run("coalesced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			htmldiff.Diff(a, bq, htmldiff.Options{CoalesceWithin: 2})
		}
	})
}

// BenchmarkTrackerConcurrency compares serial and concurrent w3newer
// passes over the same 200-URL hotlist.
func BenchmarkTrackerConcurrency(b *testing.B) {
	for _, conc := range []int{1, 8} {
		b.Run(fmt.Sprintf("conc=%d", conc), func(b *testing.B) {
			clock := simclock.New(time.Time{})
			web := websim.New(clock)
			entries := make([]hotlist.Entry, 0, 200)
			for i := 0; i < 200; i++ {
				page := web.Site(fmt.Sprintf("h%d.example", i%20)).Page(fmt.Sprintf("/p%d", i))
				page.Set("content")
				entries = append(entries, hotlist.Entry{URL: page.URL()})
			}
			cfg, _ := w3config.ParseString("Default 0\n")
			tr := tracker.New(webclient.New(web), cfg, hotlist.NewHistory(), clock)
			tr.Opt.Concurrency = conc
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Run(context.Background(), entries)
			}
		})
	}
}

// BenchmarkEntitySnapshot measures the §5.3 entity-checksum pass on a
// page referencing 8 images.
func BenchmarkEntitySnapshot(b *testing.B) {
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	var page strings.Builder
	page.WriteString("<HTML><BODY><P>gallery: ")
	for i := 0; i < 8; i++ {
		web.Site("h").Page(fmt.Sprintf("/img%d.gif", i)).Set(strings.Repeat("gifdata", 100))
		fmt.Fprintf(&page, `<IMG SRC="/img%d.gif"> `, i)
	}
	page.WriteString("</P></BODY></HTML>")
	fac, err := snapshot.New(b.TempDir(), webclient.New(web), clock)
	if err != nil {
		b.Fatal(err)
	}
	fac.SetEntityTracking(snapshot.EntityTrackingOptions{Enabled: true})
	web.Site("h").Page("/gallery").Set(page.String())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Each iteration is a changed check-in (unique suffix).
		body := page.String() + fmt.Sprintf("<!-- v%d -->", i)
		if _, err := fac.RememberContent(context.Background(), "", "http://h/gallery", body); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Sharded store: bulk check-in fan-out -------------------------------------

// BenchmarkShardedCheckin measures a bulk check-in of 64 pages through
// CheckinBatch against the flat store and an 8-shard store. Sharding
// partitions the batch into per-shard worker pools, so the RCS diff and
// file work of parallel check-ins stops serialising on one directory.
func BenchmarkShardedCheckin(b *testing.B) {
	const pages = 64
	filler := strings.Repeat("<P>steady paragraph of page body text that pads the document.</P>\n", 60)
	for _, shards := range []int{1, 8} {
		name := "flat"
		if shards > 1 {
			name = fmt.Sprintf("shards=%d", shards)
		}
		b.Run(name, func(b *testing.B) {
			clock := simclock.New(time.Time{})
			fac, err := snapshot.NewSharded(b.TempDir(), shards, nil, clock)
			if err != nil {
				b.Fatal(err)
			}
			items := make([]snapshot.BatchItem, pages)
			for i := range items {
				items[i].URL = fmt.Sprintf("http://h%d.example/p%d", i%16, i)
			}
			b.SetBytes(int64(pages * len(filler)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clock.Advance(24 * time.Hour)
				for j := range items {
					items[j].Body = fmt.Sprintf("<P>version %d of page %d.</P>\n%s", i, j, filler)
				}
				results, errs := fac.CheckinBatch(context.Background(), "", items)
				for j := range errs {
					if errs[j] != nil {
						b.Fatal(errs[j])
					}
					if !results[j].Changed {
						b.Fatal("unchanged check-in")
					}
				}
			}
		})
	}
}

// --- Scheduler: adaptive polling hot path -----------------------------------

// BenchmarkSchedulerTick measures one scheduler step at a 10k-URL
// schedule: advance the clock to the next due time, pop the due item,
// poll it, fold the outcome into its EWMA estimator, and push it back
// — the per-poll cost of the continuous scheduler's control loop.
func BenchmarkSchedulerTick(b *testing.B) {
	clock := simclock.New(time.Time{})
	sc := sched.New(sched.Config{
		MinInterval: time.Minute,
		MaxInterval: time.Hour,
		HostRPS:     1 << 20, // politeness never defers: isolate heap + estimator
		Workers:     1,
	})
	sc.Clock = clock
	sc.Metrics = obs.NewRegistry()
	var n int
	sc.Poll = func(ctx context.Context, url string) sched.Outcome {
		n++
		if n%2 == 0 {
			return sched.Changed
		}
		return sched.Unchanged
	}
	for i := 0; i < 10000; i++ {
		sc.Add(fmt.Sprintf("http://host%d.example/p%d", i%100, i))
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, ok := sc.NextDue()
		if !ok {
			b.Fatal("empty schedule")
		}
		clock.Set(next)
		if st := sc.Tick(ctx); st.Polled == 0 {
			b.Fatal("tick polled nothing at its own due time")
		}
	}
}
