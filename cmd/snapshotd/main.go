// Command snapshotd runs the AIDE server: the snapshot facility's
// endpoints (/remember, /diff, /history, /co, /rlog, /rcsdiff), the
// integrated per-user reports (/report, /register, /seen), and the
// community What's-New page (/whatsnew). Server-side tracking sweeps run
// on a timer, checking every registered URL once per interval regardless
// of how many users want it (§8.3).
//
// Usage:
//
//	snapshotd [-addr :8080] [-data ./aide-data] [-config w3newer.cfg]
//	          [-shards 1] [-replicas addr,addr] [-replica-sync 1m]
//	          [-replica-repair-shards 1] [-replica-fail-threshold 3]
//	          [-replica-cooldown 1m] [-scrub-interval 0] [-scrub-rate 200]
//	          [-diffcache-max 33554432] [-prewarm 2] [-timemap-page 500]
//	          [-sweep 1h] [-sweep-workers 4] [-sweep-jitter 0] [-fixed fixed-urls.txt]
//	          [-sched] [-sched-min 15m] [-sched-max 168h] [-host-rps 1]
//	          [-jitter-seed 0] [-forms] [-auth] [-timeout 30s] [-req-timeout 2m]
//	          [-max-inflight 64] [-breaker-threshold 5] [-breaker-cooldown 5m]
//	          [-debug-addr :6060] [-log-level info]
//
// -shards N partitions the archive store across N shard directories by
// consistent hashing of the URL (1 = the flat layout, format-compatible
// with repositories from earlier versions). Opening an existing
// repository with a new shard count triggers a rebalance pass before
// serving. -replicas lists replica snapshotd base URLs the leader
// pushes per-shard deltas to, every -replica-sync, with a seeded
// anti-entropy sample of -replica-repair-shards shards each round
// (-jitter-seed drives the shard choice); /debug/shards reports
// per-shard population, replica lag, and each replica's health.
// -diffcache-max is the rendered-diff cache's byte budget (LRU-evicted,
// invalidated per URL on check-in); -prewarm sizes the worker pool that
// re-renders each page's hot revision pairs after a changed check-in so
// the first viewer hits the cache (0 disables pre-warming).
//
// Every archived URL is also served through the RFC 7089 Memento
// endpoints: /timegate (Accept-Datetime negotiation, 302 to the
// closest archived state), /timemap/link (application/link-format
// listing of all mementos, paged every -timemap-page entries), and
// /memento/<YYYYMMDDhhmmss>/<url> (the archived state itself, with
// Memento-Datetime and Link headers); /memento/diff?url=&from=&to=
// renders the HtmlDiff between the states nearest two datetimes.
//
// Self-healing: each replica carries a health state machine — after
// -replica-fail-threshold consecutive failed syncs it is marked down
// and costs one probe per -replica-cooldown instead of a full
// per-shard sync. Reads that hit a missing or corrupt archive are
// served by fetching the file from a healthy replica and repairing
// the local copy in place. -scrub-interval starts the background
// checksum scrubber, which re-reads one shard per pass (paced at
// -scrub-rate files per second), detects silent corruption against
// the checksums recorded at write time, quarantines damaged files,
// and restores them from replicas.
//
// -sched replaces the lockstep sweep loop with the continuous adaptive
// scheduler (internal/sched): every tracked URL carries its own
// next-due time, adapted between -sched-min and -sched-max by its
// observed change rate, with -host-rps bounding the request rate per
// host. Scheduler state (change-rate estimates and due times) persists
// in sched-state.json under -data, and the main listener gains
// /debug/sched. Without -sched, -sweep-jitter desynchronises the batch
// sweep's host groups by a deterministic per-host phase offset.
//
// The main listener always exposes /debug/metrics (JSON registry
// snapshot), /metrics (the same registry as Prometheus text, including
// the per-endpoint RED series the middleware records for every route),
// /debug/traces (recent spans; ?trace=<id> filters to one trace,
// spanning processes joined via the traceparent header), and
// /debug/health (per-host circuit-breaker state and load-shedding gate
// occupancy). -debug-addr starts a second listener adding
// net/http/pprof; -log-level enables structured logs on stderr
// (debug|info|warn|error).
//
// Failure isolation: -breaker-threshold/-breaker-cooldown configure the
// per-host circuit breakers on outgoing checks; -max-inflight bounds
// incoming requests, shedding the excess with 503 + Retry-After;
// -sweep-workers polls that many hosts in parallel per sweep (URLs on
// one host stay serial).
//
// -timeout bounds each outgoing fetch (per retry attempt); -req-timeout
// bounds the total work one incoming HTTP request may trigger. An
// interrupt cancels the root context: the sweep loop stops between
// URLs, state is saved, and the HTTP server shuts down gracefully.
//
// -forms enables §8.4 form tracking (saved POST services under
// /form/save, /form/list, /form/invoke); -auth switches the facility to
// §4.2 authenticated mode (anonymous accounts via /account/new).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"aide/internal/aide"
	"aide/internal/breaker"
	"aide/internal/formreg"
	"aide/internal/memento"
	"aide/internal/obs"
	"aide/internal/robots"
	"aide/internal/sched"
	"aide/internal/snapshot"
	"aide/internal/w3config"
	"aide/internal/webclient"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data", "./aide-data", "data directory for archives and control files")
	configPath := flag.String("config", "", "polling-threshold configuration (Table 1 format)")
	shards := flag.Int("shards", 1, "shard directories partitioning the archive store (1 = flat layout)")
	replicas := flag.String("replicas", "", "comma-separated replica base URLs for per-shard fan-out")
	replicaSync := flag.Duration("replica-sync", time.Minute, "interval between replica delta syncs")
	replicaRepair := flag.Int("replica-repair-shards", 1, "shards re-verified per sync cycle by the anti-entropy sample")
	replicaFailThreshold := flag.Int("replica-fail-threshold", 3, "consecutive failed syncs before a replica is marked down")
	replicaCooldown := flag.Duration("replica-cooldown", time.Minute, "how long a down replica rests before a single probe")
	scrubInterval := flag.Duration("scrub-interval", 0, "pause between checksum-scrub passes, one shard per pass (0 disables scrubbing)")
	scrubRate := flag.Int("scrub-rate", 200, "scrub pacing in files per second (0 = unpaced)")
	diffCacheMax := flag.Int64("diffcache-max", snapshot.DefaultDiffCacheMax, "rendered-diff cache budget in bytes (LRU-evicted)")
	timemapPage := flag.Int("timemap-page", memento.DefaultPageSize, "mementos per TimeMap page on the RFC 7089 endpoints")
	prewarm := flag.Int("prewarm", snapshot.DefaultPrewarmWorkers, "diff pre-warm workers rendering hot rev-pairs after each check-in (0 disables)")
	sweep := flag.Duration("sweep", time.Hour, "server-side tracking sweep interval (0 disables)")
	fixedPath := flag.String("fixed", "", "file of fixed-page URLs (one 'url title...' per line) archived on every change")
	enableForms := flag.Bool("forms", false, "enable saved-form (POST service) tracking")
	enableAuth := flag.Bool("auth", false, "require account authentication (anonymous accounts via /account/new)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-fetch timeout (each retry attempt; 0 = none)")
	reqTimeout := flag.Duration("req-timeout", 2*time.Minute, "deadline for the work behind one incoming HTTP request (0 = none)")
	sweepWorkers := flag.Int("sweep-workers", 4, "hosts polled in parallel per sweep (<=1 = serial)")
	sweepJitter := flag.Duration("sweep-jitter", 0, "max deterministic per-host phase offset at the start of each concurrent sweep (0 disables)")
	schedMode := flag.Bool("sched", false, "replace the sweep loop with the continuous adaptive scheduler")
	schedMin := flag.Duration("sched-min", 15*time.Minute, "scheduler: shortest polling interval for fast-changing pages")
	schedMax := flag.Duration("sched-max", 7*24*time.Hour, "scheduler: longest polling interval for stagnant pages")
	hostRPS := flag.Float64("host-rps", 1.0, "scheduler: max requests per second against any one host")
	jitterSeed := flag.Int64("jitter-seed", 0, "seed for deterministic jitter (scheduler phase spread and -sweep-jitter)")
	maxInflight := flag.Int("max-inflight", 64, "max simultaneous incoming HTTP requests before shedding with 503 (0 = unlimited)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive host failures before the circuit breaker opens (0 disables breakers)")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Minute, "how long an open breaker rejects a host before probing again")
	debugAddr := flag.String("debug-addr", "", "optional second listener with /debug/metrics, /debug/traces, and net/http/pprof")
	logLevel := flag.String("log-level", "", "enable structured logs on stderr at this level (debug|info|warn|error)")
	flag.Parse()

	if *logLevel != "" {
		if err := obs.EnableLogging(os.Stderr, *logLevel); err != nil {
			log.Fatal("snapshotd: ", err)
		}
	}
	// Per-process span-id seed: a replica fan-out trace merges leader and
	// replica spans by trace id, so their span ids must not collide.
	obs.DefaultTracer.Seed = obs.SeedFromPID()
	if *debugAddr != "" {
		go func() {
			log.Printf("snapshotd: debug endpoints on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, obs.DebugMux()); err != nil {
				log.Printf("snapshotd: debug listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	client := webclient.New(&webclient.HTTPTransport{})
	client.Timeout = *timeout
	client.Retry = webclient.DefaultRetryPolicy()
	if *breakerThreshold > 0 {
		client.Breakers = breaker.NewSet(breaker.Config{
			FailureThreshold: *breakerThreshold,
			Cooldown:         *breakerCooldown,
		})
	}
	fac, err := snapshot.NewSharded(*dataDir, *shards, client, nil)
	if err != nil {
		log.Fatal("snapshotd: ", err)
	}
	fac.SetDiffCacheMax(*diffCacheMax)
	fac.EnablePrewarm(*prewarm)
	if *shards > 1 {
		moved, err := fac.Rebalance()
		if err != nil {
			log.Fatal("snapshotd: rebalance: ", err)
		}
		if moved > 0 {
			log.Printf("snapshotd: rebalanced %d files across %d shards", moved, *shards)
		}
	}
	cfg := loadConfig(*configPath)
	srv := aide.NewServer(fac, client, cfg, nil)
	srv.RequestTimeout = *reqTimeout
	srv.Concurrency = *sweepWorkers
	srv.MaxSimultaneous = *maxInflight
	srv.PhaseJitter = *sweepJitter
	srv.JitterSeed = *jitterSeed
	// robots.txt failures fail open, so one attempt is enough; retrying
	// with backoff would stall every sweep on hosts that are down.
	robotsClient := webclient.New(&webclient.HTTPTransport{})
	robotsClient.Timeout = *timeout
	srv.Robots = robots.NewCache(func(ctx context.Context, url string) (int, string, error) {
		info, err := robotsClient.Get(ctx, url)
		return info.Status, info.Body, err
	}, nil)

	if *enableForms {
		forms, err := formreg.New(*dataDir)
		if err != nil {
			log.Fatal("snapshotd: ", err)
		}
		srv.Forms = forms
		fac.Forms = forms
		log.Printf("snapshotd: form tracking enabled (%d saved forms)", len(forms.All()))
	}

	// Registrations and tracking state survive restarts.
	statePath := filepath.Join(*dataDir, "aide-state.json")
	if err := srv.LoadState(statePath); err != nil {
		log.Fatal("snapshotd: ", err)
	}

	if *fixedPath != "" {
		n, err := loadFixed(srv, *fixedPath)
		if err != nil {
			log.Fatal("snapshotd: ", err)
		}
		log.Printf("snapshotd: %d fixed pages loaded", n)
	}

	if *schedMode {
		schedStatePath := filepath.Join(*dataDir, "sched-state.json")
		sc, err := srv.StartSchedulerFromState(sched.Config{
			MinInterval:  *schedMin,
			MaxInterval:  *schedMax,
			HostRPS:      *hostRPS,
			Workers:      *sweepWorkers,
			Seed:         *jitterSeed,
			BreakerDefer: *breakerCooldown,
		}, schedStatePath)
		if err != nil {
			log.Printf("snapshotd: scheduler state: %v (starting fresh)", err)
		}
		sc.OnTick = func(st sched.TickStats) {
			if st.Polled == 0 && st.DeferredBreaker+st.DeferredPoliteness == 0 {
				return
			}
			log.Printf("snapshotd: sched tick: due=%d polled=%d changed=%d failed=%d deferred=%d queue=%d",
				st.Due, st.Polled, st.Changed, st.Failed,
				st.DeferredBreaker+st.DeferredPoliteness, st.Queue)
			if err := srv.SaveState(statePath); err != nil {
				log.Printf("snapshotd: saving state: %v", err)
			}
			if err := sc.SaveState(schedStatePath); err != nil {
				log.Printf("snapshotd: saving scheduler state: %v", err)
			}
		}
		go func() {
			if err := sc.Run(ctx); err != nil && err != context.Canceled {
				log.Printf("snapshotd: scheduler: %v", err)
			}
			if err := sc.SaveState(schedStatePath); err != nil {
				log.Printf("snapshotd: saving scheduler state: %v", err)
			}
			log.Print("snapshotd: scheduler stopped")
		}()
		log.Printf("snapshotd: continuous scheduler on %d URLs (intervals %v..%v, %g req/s per host)",
			sc.Len(), *schedMin, *schedMax, *hostRPS)
	} else if *sweep > 0 {
		go func() {
			for {
				stats := srv.TrackAll(ctx)
				log.Printf("snapshotd: sweep: %d distinct, %d checked, %d skipped, %d new versions, %d errors (%d degraded), %d discovered, %d canceled",
					stats.Distinct, stats.Checked, stats.Skipped, stats.NewVersions, stats.Errors, stats.Degraded, stats.Discovered, stats.Canceled)
				if err := srv.SaveState(statePath); err != nil {
					log.Printf("snapshotd: saving state: %v", err)
				}
				select {
				case <-time.After(*sweep):
				case <-ctx.Done():
					log.Print("snapshotd: sweep loop stopped")
					return
				}
			}
		}()
	}

	snapSrv := snapshot.NewServer(fac)
	snapSrv.RequestTimeout = *reqTimeout
	snapSrv.TimeMapPage = *timemapPage
	if *replicas != "" {
		repl := snapshot.NewReplicator(fac, client, strings.Split(*replicas, ","), *jitterSeed)
		repl.RepairShards = *replicaRepair
		repl.HealthConfig = breaker.Config{
			FailureThreshold: *replicaFailThreshold,
			Cooldown:         *replicaCooldown,
		}
		snapSrv.Replicator = repl
		// Reads that hit a missing or corrupt local file repair it from
		// a healthy replica; the scrubber uses the same source.
		fac.Failover = repl
		go repl.Run(ctx, *replicaSync)
		log.Printf("snapshotd: replicating %d shards to %d replicas every %v",
			fac.Shards(), len(repl.Replicas), *replicaSync)
	}
	if *scrubInterval > 0 {
		scrubber := &snapshot.Scrubber{Facility: fac, Interval: *scrubInterval, RatePerSec: *scrubRate}
		snapSrv.Scrubber = scrubber
		go scrubber.Run(ctx)
		log.Printf("snapshotd: checksum scrub every %v (%d files/s)", *scrubInterval, *scrubRate)
	}
	if *enableAuth {
		accounts, err := snapshot.OpenAccounts(*dataDir)
		if err != nil {
			log.Fatal("snapshotd: ", err)
		}
		snapSrv.Accounts = accounts
		log.Printf("snapshotd: authentication enabled (%d accounts)", accounts.Len())
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler(snapSrv)}
	go func() {
		<-ctx.Done()
		log.Print("snapshotd: shutting down")
		if err := srv.SaveState(statePath); err != nil {
			log.Printf("snapshotd: saving state: %v", err)
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutCtx)
	}()
	log.Printf("snapshotd: serving on %s (data in %s)", *addr, *dataDir)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal("snapshotd: ", err)
	}
	log.Print("snapshotd: stopped")
}

func loadConfig(path string) *w3config.Config {
	if path == "" {
		cfg, err := w3config.ParseString("Default 1d\n")
		if err != nil {
			log.Fatal("snapshotd: ", err)
		}
		return cfg
	}
	f, err := os.Open(path)
	if err != nil {
		log.Fatal("snapshotd: ", err)
	}
	defer f.Close()
	cfg, err := w3config.Parse(f)
	if err != nil {
		log.Fatal("snapshotd: ", err)
	}
	return cfg
}

// loadFixed reads "url [title...]" lines into the fixed-page set.
func loadFixed(srv *aide.Server, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		url, title, _ := strings.Cut(line, " ")
		if title == "" {
			title = url
		}
		srv.AddFixed(url, strings.TrimSpace(title))
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	if n == 0 {
		return 0, fmt.Errorf("no fixed URLs in %s", path)
	}
	return n, nil
}
