package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"aide/internal/simclock"
	"aide/internal/snapshot"
	"aide/internal/webclient"
	"aide/internal/websim"
)

// expCache measures the §4.2 resource-utilization claims: "These loads
// can be alleviated by caching the output of HtmlDiff for a while, so
// many users who have seen versions N and N+1 of a page could retrieve
// HtmlDiff(pageN, pageN+1) with a single invocation", and the archive
// prune limit.
func expCache(ctx context.Context, _ string) error {
	dir, err := os.MkdirTemp("", "aide-cache-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	page := web.Site("h").Page("/p")
	page.Set(websim.USENIXSept)
	fac, err := snapshot.New(dir, webclient.New(web), clock)
	if err != nil {
		return err
	}
	fac.Remember(ctx, "u@h", "http://h/p")
	clock.Advance(time.Hour)
	page.Set(websim.USENIXNov)
	fac.Remember(ctx, "u@h", "http://h/p")

	const users = 200
	start := time.Now()
	for i := 0; i < users; i++ {
		if _, err := fac.DiffRevs("http://h/p", "1.1", "1.2"); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("    %d users requested HtmlDiff(1.1, 1.2); HtmlDiff ran %d time(s), %d served from cache\n",
		users, users-fac.DiffCacheHits(), fac.DiffCacheHits())
	fmt.Printf("    total wall time %v (%.1f µs/user amortised)\n",
		elapsed.Round(time.Millisecond), float64(elapsed.Microseconds())/users)

	// The prune limit bounds archive growth for high-churn pages.
	churn := web.Site("h").Page("/churn")
	web.Evolve(churn, 24*time.Hour, websim.ReplaceGenerator("Churn", 400, 9))
	for day := 0; day < 60; day++ {
		web.Advance(24 * time.Hour)
		fac.RememberContent(ctx, "", "http://h/churn", churn.Current().Body)
	}
	stats, _ := fac.Storage()
	var before int64
	for _, u := range stats.PerURL {
		if u.URL == "http://h/churn" {
			before = u.Bytes
		}
	}
	results, err := fac.Prune(10)
	if err != nil {
		return err
	}
	stats, _ = fac.Storage()
	var after int64
	for _, u := range stats.PerURL {
		if u.URL == "http://h/churn" {
			after = u.Bytes
		}
	}
	dropped := 0
	for _, r := range results {
		dropped += r.Dropped
	}
	fmt.Printf("    prune to 10 revisions: dropped %d revisions, churn archive %.0f KB -> %.0f KB\n",
		dropped, float64(before)/1024, float64(after)/1024)
	return nil
}
