package main

import (
	"context"
	"fmt"
	"time"

	"aide/internal/hotlist"
	"aide/internal/simclock"
	"aide/internal/tracker"
	"aide/internal/w3config"
	"aide/internal/webclient"
	"aide/internal/websim"
)

// expErrors exercises the §3.1 error-handling policies against a flaky
// web: "Proxy-caching servers are sometimes overloaded to the point of
// timing out large numbers of requests ... In general, however, it
// seems that errors are likely to be transient, and checking the next
// time w3newer is run is reasonable." The alternative flag "can tell
// w3newer to treat error conditions as a successful check as far as the
// URL's timestamp goes."
//
// The comparison: under intermittent timeouts, retry-next-run (the
// default) finds more changes sooner at the price of more traffic to the
// flaky hosts; errors-as-checked backs off to the normal cadence. The
// skip-host policy caps how hard one sick host is hammered within a run.
func expErrors(ctx context.Context, _ string) error {
	type cond struct {
		name             string
		errorsAsChecked  bool
		skipHostAfterErr bool
	}
	conds := []cond{
		{"retry next run (default)", false, false},
		{"errors-as-checked", true, false},
		{"default + skip-host-after-error", false, true},
	}
	fmt.Println("    100 URLs on 10 hosts, one host failing every 2nd request; 2d thresholds;")
	fmt.Println("    30 daily runs; pages edit weekly.")
	fmt.Printf("    %-36s %9s %9s %9s %9s\n",
		"condition", "requests", "errors", "changed", "sick-host req")
	for _, c := range conds {
		reqs, errs, changed, sick := runErrorCondition(ctx, c.errorsAsChecked, c.skipHostAfterErr)
		fmt.Printf("    %-36s %9d %9d %9d %9d\n", c.name, reqs, errs, changed, sick)
	}
	return nil
}

func runErrorCondition(ctx context.Context, errorsAsChecked, skipHost bool) (requests, errors, changed, sickHostReqs int) {
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	var entries []hotlist.Entry
	for i := 0; i < 100; i++ {
		host := fmt.Sprintf("h%d.example", i%10)
		page := web.Site(host).Page(fmt.Sprintf("/p%d", i))
		web.Evolve(page, 7*24*time.Hour, websim.EditGenerator("P", 6, int64(i)))
		entries = append(entries, hotlist.Entry{URL: page.URL()})
	}
	sick := web.Site("h0.example")
	sick.SetFailEvery(2)

	cfg, err := w3config.ParseString("Default 2d\n")
	if err != nil {
		panic(err)
	}
	hist := hotlist.NewHistory()
	tr := tracker.New(webclient.New(web), cfg, hist, clock)
	tr.Opt.TreatErrorsAsChecked = errorsAsChecked
	tr.Opt.SkipHostAfterError = skipHost

	for day := 0; day < 30; day++ {
		web.Advance(24 * time.Hour)
		h0, g0 := web.TotalRequests()
		for _, r := range tr.Run(ctx, entries) {
			switch r.Status {
			case tracker.Failed:
				errors++
			case tracker.Changed:
				changed++
				hist.Visit(r.Entry.URL, clock.Now())
			}
		}
		h1, g1 := web.TotalRequests()
		requests += (h1 - h0) + (g1 - g0)
	}
	sh, sg := sick.Requests()
	return requests, errors, changed, sh + sg
}
