package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestExperimentsRun exercises the fast experiments end to end: each
// must run without panicking and the figure experiments must write
// their HTML artifacts. (The storage/polling/lcs experiments run for
// seconds to minutes and are covered by the aidebench binary itself.)
func TestExperimentsRun(t *testing.T) {
	out := t.TempDir()
	for _, e := range experiments {
		switch e.name {
		case "table1", "fig1", "fig2", "rcs", "cache", "serverside":
			t.Run(e.name, func(t *testing.T) {
				e.run(context.Background(), out)
			})
		}
	}
	for _, artifact := range []string{"fig1_report.html", "fig2_htmldiff.html", "fig2_reverse.html", "fig2_onlynew.html"} {
		if fi, err := os.Stat(filepath.Join(out, artifact)); err != nil || fi.Size() == 0 {
			t.Errorf("artifact %s missing or empty: %v", artifact, err)
		}
	}
}

// TestExperimentNamesUnique guards the registry.
func TestExperimentNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments {
		if seen[e.name] {
			t.Errorf("duplicate experiment %q", e.name)
		}
		seen[e.name] = true
		if e.desc == "" || e.run == nil {
			t.Errorf("experiment %q incomplete", e.name)
		}
	}
}
