package main

import (
	"context"
	"fmt"
	"time"

	"aide/internal/hotlist"
	"aide/internal/htmldiff"
	"aide/internal/robots"
	"aide/internal/simclock"
	"aide/internal/tracker"
	"aide/internal/w3config"
	"aide/internal/webclient"
	"aide/internal/websim"
)

// expTable1 parses the paper's literal Table 1 and shows the threshold
// each sample URL resolves to, demonstrating first-match-wins semantics.
func expTable1(_ context.Context, _ string) error {
	cfg, err := w3config.ParseString(w3config.Table1)
	if err != nil {
		return err
	}
	fmt.Println("    rules parsed from the paper's Table 1:")
	fmt.Printf("      %-60s %s\n", "Default", cfg.Default)
	for _, r := range cfg.Rules {
		fmt.Printf("      %-60s %s\n", r.Raw, r.Threshold)
	}
	fmt.Println("    sample URL resolution (first matching pattern wins):")
	samples := []string{
		"file:/home/douglis/todo.html",
		"http://www.yahoo.com/Computers/",
		"http://www.research.att.com/orgs/ssr/",
		"http://www.ncsa.uiuc.edu/SDG/Software/Mosaic/Docs/whats-new.html",
		"http://snapple.cs.washington.edu:600/mobile/",
		"http://www.unitedmedia.com/comics/dilbert/",
		"http://www.usenix.org/",
	}
	for _, u := range samples {
		fmt.Printf("      %-60s -> %-7s (rule %s)\n", u, cfg.ThresholdFor(u), cfg.MatchingRule(u))
	}
	return nil
}

// expFig1 builds a hotlist whose URLs land in every state the Figure 1
// report shows — changed, seen, not-checked, robot-excluded, erroring —
// runs w3newer once, and writes the report.
func expFig1(ctx context.Context, outDir string) error {
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	client := webclient.New(web)

	// A small synthetic corner of the 1995 web.
	mobile := web.Site("snapple.cs.washington.edu:600").Page("/mobile/")
	web.Evolve(mobile, 24*time.Hour, websim.AppendGenerator("Mobile and Wireless Computing", 11))
	stable := web.Site("www.research.att.com").Page("/orgs/ssr/")
	stable.Set(websim.StaticGenerator("Software Systems Research", 150, 12)(0))
	usenix := web.Site("www.usenix.org").Page("/")
	web.Evolve(usenix, 7*24*time.Hour, websim.EditGenerator("USENIX Association", 8, 13))
	yahoo := web.Site("www.yahoo.com").Page("/Computers/")
	web.Evolve(yahoo, 24*time.Hour, websim.AppendGenerator("Yahoo: Computers", 14))
	dilbert := web.Site("www.unitedmedia.com").Page("/comics/dilbert/")
	dilbert.SetDynamic(websim.ClockBody("Dilbert"))
	bulletin := web.Site("www.smartpages.example").Page("/program/")
	bulletin.Set(`<HTML><HEAD><META NAME="bulletin" CONTENT="3 talks added to the program"></HEAD>
<BODY><P>conference program listing</P></BODY></HTML>`)
	bulletin.SetNoLastModified() // CGI-style page: checked by checksum
	private := web.Site("private.example.com")
	private.SetRobots("User-agent: *\nDisallow: /\n")
	private.Page("/stats/").Set("<P>private stats</P>")
	dead := web.Site("gone.example.com").Page("/old-project/")
	dead.Set("x")
	dead.SetGone()
	web.Site("down.example.com").Page("/flaky/").Set("x")
	web.Site("down.example.com").SetTimeout(true)

	entries := []hotlist.Entry{
		{URL: "http://snapple.cs.washington.edu:600/mobile/", Title: "Mobile and Wireless Computing"},
		{URL: "http://www.research.att.com/orgs/ssr/", Title: "Software Systems Research"},
		{URL: "http://www.usenix.org/", Title: "USENIX Association"},
		{URL: "http://www.yahoo.com/Computers/", Title: "Yahoo: Computers"},
		{URL: "http://www.unitedmedia.com/comics/dilbert/", Title: "Dilbert (never checked)"},
		{URL: "http://www.smartpages.example/program/", Title: "A page with a bulletin"},
		{URL: "http://private.example.com/stats/", Title: "Robot-excluded statistics"},
		{URL: "http://gone.example.com/old-project/", Title: "A page that no longer exists"},
		{URL: "http://down.example.com/flaky/", Title: "An overloaded server"},
	}

	// The user saw everything ten days ago, then the web moved on.
	hist := hotlist.NewHistory()
	for _, e := range entries {
		hist.Visit(e.URL, clock.Now())
	}
	web.Advance(10 * 24 * time.Hour)
	// ... except Yahoo, visited again yesterday (inside its 7d rule).
	hist.Visit("http://www.yahoo.com/Computers/", clock.Now().Add(-24*time.Hour))

	cfg, err := w3config.ParseString(w3config.Table1)
	if err != nil {
		return err
	}
	tr := tracker.New(client, cfg, hist, clock)
	tr.Robots = robots.NewCache(func(ctx context.Context, url string) (int, string, error) {
		info, err := client.Get(ctx, url)
		return info.Status, info.Body, err
	}, clock)

	results := tr.Run(ctx, entries)
	for _, r := range results {
		fmt.Printf("      %-45s %-14s via %s\n", r.Entry.Title, r.Status, r.Via)
	}
	sum := tracker.Summary(results)
	fmt.Printf("    summary: %d changed, %d unchanged, %d not checked, %d excluded, %d errors\n",
		sum[tracker.Changed], sum[tracker.Unchanged], sum[tracker.NotChecked],
		sum[tracker.Excluded], sum[tracker.Failed])
	report := tracker.Report(results, tracker.ReportOptions{
		SnapshotBase: "http://aide.research.att.com",
		User:         "douglis@research.att.com",
		Now:          clock.Now(),
		Prioritize:   true,
	})
	return writeArtifact(outDir, "fig1_report.html", report)
}

// expFig2 runs HtmlDiff over the two versions and writes the merged
// page, reporting the same structural elements the paper's figure shows.
func expFig2(_ context.Context, outDir string) error {
	r := htmldiff.Diff(websim.USENIXSept, websim.USENIXNov, htmldiff.Options{
		Title: "http://www.usenix.org/ (9/29/95 vs 11/3/95)",
	})
	s := r.Stats
	fmt.Printf("    tokens: %d old, %d new; %d common, %d modified, %d deleted, %d inserted\n",
		s.OldTokens, s.NewTokens, s.Common, s.Modified, s.Deleted, s.Inserted)
	fmt.Printf("    difference regions (arrow anchors): %d; change fraction %.2f\n",
		s.Differences, s.ChangeFraction)
	if err := writeArtifact(outDir, "fig2_htmldiff.html", r.HTML); err != nil {
		return err
	}

	// The reverse and only-new presentations of §5.2, for completeness.
	rev := htmldiff.Diff(websim.USENIXSept, websim.USENIXNov, htmldiff.Options{Reverse: true,
		Title: "reverse sense: old markups intact"})
	if err := writeArtifact(outDir, "fig2_reverse.html", rev.HTML); err != nil {
		return err
	}
	onlyNew := htmldiff.Diff(websim.USENIXSept, websim.USENIXNov, htmldiff.Options{Mode: htmldiff.OnlyNew,
		Title: "Draconian option: old material left out"})
	return writeArtifact(outDir, "fig2_onlynew.html", onlyNew.HTML)
}
