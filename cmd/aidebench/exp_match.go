package main

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"aide/internal/htmldiff"
	"aide/internal/websim"
)

// expMatch probes the two §5.1 knobs the paper leaves unspecified: the
// sentence-length filter ("If the lengths of two sentences are not
// 'sufficiently close,' then they do not match") and the 2W/L match
// threshold ("If the percentage (2W)/L is sufficiently large, then the
// sentences match"). The workload edits a fixed fraction of the words in
// each of 40 sentences; a matcher that still pairs the edited sentences
// reports them as in-place modifications (good: word-level highlighting),
// while one that rejects the pair reports a delete+insert (coarser).
func expMatch(_ context.Context, _ string) error {
	fmt.Println("    40 sentences, 30% of words rewritten in each; how the §5.1 thresholds")
	fmt.Println("    classify the edits (modified = word-level highlighting survives):")
	fmt.Printf("    %-12s %-12s %10s %10s %10s\n",
		"matchRatio", "lengthRatio", "modified", "del+ins", "regions")
	for _, mr := range []float64{0.3, 0.5, 0.7, 0.9} {
		s := runMatchTrial(mr, 0.5, 0.3)
		fmt.Printf("    %-12.1f %-12.1f %10d %10d %10d\n",
			mr, 0.5, s.Modified, s.Deleted+s.Inserted, s.Differences)
	}
	fmt.Println("    (the default 0.5 keeps moderately edited sentences paired; at 0.9 the")
	fmt.Println("     same edits degrade to delete+insert blocks, §5.3's muddle)")

	fmt.Println("    and with heavier edits (60% of words), sweeping the same knob:")
	for _, mr := range []float64{0.2, 0.3, 0.5} {
		s := runMatchTrial(mr, 0.5, 0.6)
		fmt.Printf("    %-12.1f %-12.1f %10d %10d %10d\n",
			mr, 0.5, s.Modified, s.Deleted+s.Inserted, s.Differences)
	}
	return nil
}

// runMatchTrial builds the corpus and compares under the given knobs.
func runMatchTrial(matchRatio, lengthRatio, editFrac float64) htmldiff.Stats {
	rng := rand.New(rand.NewSource(77))
	var oldDoc, newDoc strings.Builder
	oldDoc.WriteString("<HTML><BODY>\n")
	newDoc.WriteString("<HTML><BODY>\n")
	for s := 0; s < 40; s++ {
		words := strings.Fields(websim.Filler(rng, 10))
		edited := append([]string(nil), words...)
		for i := range edited {
			if rng.Float64() < editFrac {
				edited[i] = edited[i] + "X"
			}
		}
		fmt.Fprintf(&oldDoc, "<P>%s.</P>\n", strings.Join(words, " "))
		fmt.Fprintf(&newDoc, "<P>%s.</P>\n", strings.Join(edited, " "))
	}
	oldDoc.WriteString("</BODY></HTML>\n")
	newDoc.WriteString("</BODY></HTML>\n")
	return htmldiff.Compare(oldDoc.String(), newDoc.String(), htmldiff.Options{
		MatchRatio:  matchRatio,
		LengthRatio: lengthRatio,
	})
}
