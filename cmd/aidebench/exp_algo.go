package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"aide/internal/htmldiff"
	"aide/internal/lcs"
	"aide/internal/rcs"
	"aide/internal/simclock"
	"aide/internal/websim"
)

// expLCS measures HtmlDiff's cost against document size and compares the
// two LCS engines — the quadratic-space dynamic program and Hirschberg's
// linear-space algorithm the paper cites — in time and allocated bytes.
func expLCS(_ context.Context, _ string) error {
	fmt.Println("    HtmlDiff wall time vs document size (5% of sentences edited):")
	for _, kb := range []int{1, 4, 16, 64} {
		oldDoc := syntheticDoc(kb * 1024)
		newDoc := editFraction(oldDoc, 0.05)
		start := time.Now()
		const iters = 5
		var stats htmldiff.Stats
		for i := 0; i < iters; i++ {
			stats = htmldiff.Diff(oldDoc, newDoc, htmldiff.Options{}).Stats
		}
		per := time.Since(start) / iters
		fmt.Printf("      %3d KB: %10v per diff  (%d tokens, %d regions)\n",
			kb, per.Round(10*time.Microsecond), stats.OldTokens, stats.Differences)
	}

	fmt.Println("    Hirschberg (linear space) vs quadratic DP on equal-weight tokens:")
	fmt.Printf("      %-8s %14s %14s %14s %14s\n", "tokens", "DP time", "DP bytes", "Hirschberg", "Hb bytes")
	for _, n := range []int{200, 500, 1000, 2000} {
		a, b := tokenPair(n)
		w := eqW{a, b}
		dpT, dpB := measure(func() { lcs.DP(w) })
		hbT, hbB := measure(func() { lcs.Hirschberg(w) })
		fmt.Printf("      %-8d %14v %14s %14v %14s\n",
			n, dpT.Round(10*time.Microsecond), kib(dpB), hbT.Round(10*time.Microsecond), kib(hbB))
	}
	fmt.Println("    (the paper's choice: same optimum, memory linear in the input)")
	return nil
}

type eqW struct{ a, b []string }

func (w eqW) LenA() int { return len(w.a) }
func (w eqW) LenB() int { return len(w.b) }
func (w eqW) Weight(i, j int) float64 {
	if w.a[i] == w.b[j] {
		return 1
	}
	return 0
}

func tokenPair(n int) (a, b []string) {
	rng := rand.New(rand.NewSource(7))
	a = make([]string, n)
	for i := range a {
		a[i] = fmt.Sprintf("tok%d", rng.Intn(50))
	}
	b = append([]string(nil), a...)
	for i := 0; i < n; i += 10 {
		b[i] = "edited"
	}
	return a, b
}

// measure times fn and reports bytes allocated during one run.
func measure(fn func()) (time.Duration, uint64) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed, after.TotalAlloc - before.TotalAlloc
}

func kib(b uint64) string { return fmt.Sprintf("%d KiB", b/1024) }

// syntheticDoc builds an HTML document of roughly size bytes.
func syntheticDoc(size int) string {
	rng := rand.New(rand.NewSource(3))
	var sb strings.Builder
	sb.WriteString("<HTML><BODY>\n")
	for sb.Len() < size {
		fmt.Fprintf(&sb, "<P>%s</P>\n", websim.FillerSentences(rng, 3))
	}
	sb.WriteString("</BODY></HTML>\n")
	return sb.String()
}

// editFraction rewrites roughly the given fraction of paragraphs, always
// editing at least one so the comparison is never a pure no-op.
func editFraction(doc string, frac float64) string {
	lines := strings.Split(doc, "\n")
	rng := rand.New(rand.NewSource(4))
	edited := false
	for i, l := range lines {
		if strings.HasPrefix(l, "<P>") && (rng.Float64() < frac || !edited) {
			lines[i] = fmt.Sprintf("<P>%s</P>", websim.FillerSentences(rng, 3))
			edited = true
		}
	}
	return strings.Join(lines, "\n")
}

// expRCS demonstrates the archive properties the snapshot facility
// relies on (§4): unchanged check-ins are free, storage is head + small
// reverse deltas, and any date maps to the version current then.
func expRCS(_ context.Context, _ string) error {
	dir, err := os.MkdirTemp("", "aide-rcs-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	clock := simclock.New(time.Time{})
	arch := rcs.Open(filepath.Join(dir, "demo.html,v"), clock)

	gen := websim.SizedChangeGenerator(1500, 50, 99)
	var fullCopies int64
	for step := 0; step < 20; step++ {
		clock.Advance(24 * time.Hour)
		body := gen(step)
		if _, changed, err := arch.Checkin(body, "bench", ""); err != nil {
			return err
		} else if changed {
			fullCopies += int64(len(body))
		}
	}
	size1 := arch.Size()
	// A duplicate check-in must not grow the archive.
	if _, changed, err := arch.Checkin(gen(19), "bench", ""); err != nil || changed {
		return fmt.Errorf("duplicate checkin: changed=%v err=%v", changed, err)
	}
	fmt.Printf("    20 versions of a ~10 KB page, ~50 words changed each time:\n")
	fmt.Printf("      archive size:        %6.1f KB\n", float64(arch.Size())/1024)
	fmt.Printf("      full-copy baseline:  %6.1f KB -> deltas save %.1fx\n",
		float64(fullCopies)/1024, float64(fullCopies)/float64(arch.Size()))
	fmt.Printf("      duplicate check-in:  archive unchanged at %.1f KB\n", float64(size1)/1024)

	head, _ := arch.Head()
	log, _ := arch.Log()
	midDate := log[len(log)/2].Date
	_, rev, err := arch.CheckoutAtDate(midDate.Add(time.Minute))
	if err != nil {
		return err
	}
	fmt.Printf("      head %s; checkout at %s resolves to revision %s\n",
		head, midDate.Add(time.Minute).Format("2006-01-02 15:04"), rev)
	return nil
}
