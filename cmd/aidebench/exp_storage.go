package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"time"

	"aide/internal/simclock"
	"aide/internal/snapshot"
	"aide/internal/websim"
)

// expStorage reproduces the §7 experience numbers: "There are over 500
// URLs archived ... and the archive uses under 8 Mbytes of disk storage
// (an average of 14.3 Kbytes/URL). Three files account for 2.7 Mbytes of
// that total, and each file is a URL that changes every 1-3 days and is
// being automatically archived upon each change."
//
// The synthetic population mirrors that description: three high-churn
// full-replacement pages archived on every change, and ~500 ordinary
// pages that change rarely and a little. Absolute bytes depend on the
// synthetic page sizes; the shape to check is (a) total in the
// single-digit-MB range for ~500 URLs, (b) per-URL mean in the ~10-20 KB
// range, (c) the three churners dominating total storage, and (d) delta
// storage far below the full-copy baseline.
func expStorage(ctx context.Context, _ string) error {
	const (
		days       = 180
		normalURLs = 497
		hotURLs    = 3
	)
	dir, err := os.MkdirTemp("", "aide-storage-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	clock := simclock.New(time.Time{})
	fac, err := snapshot.New(dir, nil, clock)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1996))

	var fullCopyBytes int64 // what storing every version in full would cost
	var checkins, versions int

	// archiveHistory simulates automatic archival of one URL: body(step)
	// is checked in at each change day.
	archiveHistory := func(url string, gen func(step int) string, intervalDays, jitter int) error {
		step := 0
		for day := 0; day <= days; {
			body := gen(step)
			clock.Set(simclock.Epoch.Add(time.Duration(day) * 24 * time.Hour))
			res, err := fac.RememberContent(ctx, "", url, body)
			if err != nil {
				return err
			}
			checkins++
			if res.Changed {
				versions++
				fullCopyBytes += int64(len(body))
			}
			step++
			d := intervalDays
			if jitter > 0 {
				d += rng.Intn(jitter)
			}
			if d < 1 {
				d = 1
			}
			day += d
		}
		return nil
	}

	// The three 1-3 day churners: full replacement every time.
	for i := 0; i < hotURLs; i++ {
		url := fmt.Sprintf("http://whatsnew%d.example.com/", i)
		if err := archiveHistory(url, websim.ReplaceGenerator("What's New", 900, int64(i)), 1, 2); err != nil {
			return err
		}
	}
	// The ordinary population: ~8 KB pages; 40% never change again
	// after the first save, the rest get small in-place edits every
	// 15-75 days.
	for i := 0; i < normalURLs; i++ {
		url := fmt.Sprintf("http://site%02d.example.com/page%d.html", i%40, i)
		gen := websim.SizedChangeGenerator(950, 60, int64(1000+i))
		if rng.Float64() < 0.4 {
			static := gen(0)
			err = archiveHistory(url, func(int) string { return static }, 200, 0)
		} else {
			err = archiveHistory(url, gen, 15, 60)
		}
		if err != nil {
			return err
		}
	}

	stats, err := fac.Storage()
	if err != nil {
		return err
	}
	var top3 int64
	for i := 0; i < 3 && i < len(stats.PerURL); i++ {
		top3 += stats.PerURL[i].Bytes
	}
	fmt.Printf("    URLs archived:        %d   (paper: \"over 500\")\n", stats.URLs)
	fmt.Printf("    check-ins / versions: %d / %d\n", checkins, versions)
	fmt.Printf("    total archive:        %.2f MB (paper: \"under 8 Mbytes\")\n", mb(stats.TotalBytes))
	fmt.Printf("    mean per URL:         %.1f KB (paper: 14.3 KB/URL)\n", stats.MeanBytes()/1024)
	fmt.Printf("    top 3 archives:       %.2f MB = %.0f%% of total (paper: 2.7 of <8 MB = ~35%%)\n",
		mb(top3), 100*float64(top3)/float64(stats.TotalBytes))
	for i := 0; i < 3 && i < len(stats.PerURL); i++ {
		fmt.Printf("      #%d %-40s %.0f KB\n", i+1, stats.PerURL[i].URL, float64(stats.PerURL[i].Bytes)/1024)
	}
	fmt.Printf("    full-copy baseline:   %.2f MB -> reverse deltas save %.1fx\n",
		mb(fullCopyBytes), float64(fullCopyBytes)/float64(stats.TotalBytes))
	return nil
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
