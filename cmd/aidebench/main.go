// Command aidebench regenerates every table and figure of "Tracking and
// Viewing Changes on the Web" (USENIX 1996) against this reproduction,
// plus the quantitative claims of its prose (see DESIGN.md's experiment
// index and EXPERIMENTS.md for paper-vs-measured numbers).
//
// Usage:
//
//	aidebench [-exp all|table1|fig1|fig2|storage|polling|serverside|lcs|rcs]
//	          [-out DIR]
//
// HTML artifacts (the regenerated figures) are written into -out.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
)

// experiment names in run order.
var experiments = []struct {
	name string
	desc string
	run  func(ctx context.Context, outDir string) error
}{
	{"table1", "Table 1: w3newer threshold configuration semantics", expTable1},
	{"fig1", "Figure 1: w3newer report over a mixed-state hotlist", expFig1},
	{"fig2", "Figure 2: HtmlDiff merged page for two page versions", expFig2},
	{"storage", "§7: archive growth for 500 URLs over 180 days", expStorage},
	{"polling", "§3: w3newer skip optimisations vs poll-everything baseline", expPolling},
	{"serverside", "§8.3: server-side tracking economy of scale", expServerSide},
	{"lcs", "§5: HtmlDiff cost scaling and Hirschberg vs quadratic DP", expLCS},
	{"cache", "§4.2: HtmlDiff output caching and archive pruning", expCache},
	{"errors", "§3.1: error handling under intermittent host failures", expErrors},
	{"match", "§5.1: sensitivity of the sentence-matching thresholds", expMatch},
	{"rcs", "§4: RCS-style archive behaviour (no-op check-ins, deltas, dates)", expRCS},
}

func main() {
	// All cleanup is via defer; keep os.Exit out of the work path so the
	// experiments' temp directories are removed even on failure.
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "all", "experiment to run (or 'all')")
	out := flag.String("out", "bench-out", "directory for HTML artifacts")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "aidebench:", err)
		return 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ran := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "aidebench: interrupted")
			return 1
		}
		ran = true
		fmt.Printf("==> %s — %s\n", e.name, e.desc)
		if err := e.run(ctx, *out); err != nil {
			fmt.Fprintf(os.Stderr, "aidebench: %s: %v\n", e.name, err)
			return 1
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "aidebench: unknown experiment %q\n", *exp)
		return 2
	}
	return 0
}

// writeArtifact saves a regenerated figure and reports where.
func writeArtifact(outDir, name, content string) error {
	path := filepath.Join(outDir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return fmt.Errorf("writing artifact: %w", err)
	}
	fmt.Printf("    wrote %s (%d bytes)\n", path, len(content))
	return nil
}
