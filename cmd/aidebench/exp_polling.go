package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"aide/internal/aide"
	"aide/internal/hotlist"
	"aide/internal/notify"
	"aide/internal/proxycache"
	"aide/internal/simclock"
	"aide/internal/snapshot"
	"aide/internal/tracker"
	"aide/internal/urlminder"
	"aide/internal/w3config"
	"aide/internal/webclient"
	"aide/internal/websim"
)

// buildPollingWeb populates a synthetic web with a 250-URL hotlist of
// mixed change behaviour across 25 hosts, returning the web and entries.
func buildPollingWeb(clock *simclock.Sim) (*websim.Web, []hotlist.Entry) {
	web := websim.New(clock)
	rng := rand.New(rand.NewSource(42))
	entries := make([]hotlist.Entry, 0, 250)
	for i := 0; i < 250; i++ {
		host := fmt.Sprintf("host%02d.example.com", i%25)
		path := fmt.Sprintf("/page%d.html", i)
		page := web.Site(host).Page(path)
		switch i % 5 {
		case 0: // daily what's-new style pages
			web.Evolve(page, 24*time.Hour, websim.AppendGenerator("News", int64(i)))
		case 1: // weekly edits
			web.Evolve(page, 7*24*time.Hour, websim.EditGenerator("Weekly", 10, int64(i)))
		case 2: // monthly edits
			web.Evolve(page, 30*24*time.Hour, websim.EditGenerator("Monthly", 10, int64(i)))
		default: // static
			page.Set(websim.StaticGenerator("Static", 120, int64(i))(0))
		}
		_ = rng
		entries = append(entries, hotlist.Entry{URL: "http://" + host + path, Title: path})
	}
	return web, entries
}

// pollingConfig is the w3newer threshold file for the experiment: the
// Table 1 idea applied to the synthetic hosts.
const pollingConfig = `Default 2d
http://host00\..* 0
http://host01\..* 7d
http://host02\..* never
`

// runCondition simulates 30 days of daily runs under one condition and
// returns the tracker-issued request total and the number of changed
// reports produced.
func runCondition(ctx context.Context, name string, useThresholds, persistent, useProxy bool) (requests, changedReports int) {
	clock := simclock.New(time.Time{})
	web, entries := buildPollingWeb(clock)
	cfgSrc := "Default 0\n"
	if useThresholds {
		cfgSrc = pollingConfig
	}
	cfg, err := w3config.ParseString(cfgSrc)
	if err != nil {
		panic(err)
	}
	hist := hotlist.NewHistory()
	var proxy *proxycache.Cache
	if useProxy {
		proxy = proxycache.New(web, clock)
	}

	newTracker := func() *tracker.Tracker {
		tr := tracker.New(webclient.New(web), cfg, hist, clock)
		if proxy != nil {
			tr.Proxy = proxy
		}
		return tr
	}
	tr := newTracker()
	communityRng := rand.New(rand.NewSource(7))

	for day := 0; day < 30; day++ {
		web.Advance(24 * time.Hour)
		if proxy != nil {
			// The AT&T-wide proxy serves a whole community: every day
			// other users browse a third of these pages through it,
			// keeping its modification dates warm. This traffic exists
			// with or without w3newer and is not counted against it.
			pc := webclient.New(proxy)
			for _, e := range entries {
				if communityRng.Float64() < 0.33 {
					pc.Get(ctx, e.URL)
				}
			}
		}
		if !persistent {
			tr = newTracker() // w3new forgets everything between runs
		}
		before1, before2 := web.TotalRequests()
		results := tr.Run(ctx, entries)
		after1, after2 := web.TotalRequests()
		requests += (after1 - before1) + (after2 - before2)
		// The user reads the report and visits every changed page. The
		// visit itself goes through the proxy when one is present,
		// keeping the proxy's modification dates warm.
		for _, r := range results {
			if r.Status != tracker.Changed {
				continue
			}
			changedReports++
			hist.Visit(r.Entry.URL, clock.Now())
			if proxy != nil {
				webclient.New(proxy).Get(ctx, r.Entry.URL)
			}
		}
	}
	return requests, changedReports
}

// expPolling compares w3new-style poll-everything against w3newer's skip
// logic (§3's motivation: "To our knowledge, the tools described in
// Section 2.1 poll every URL with the same frequency. We modified w3new
// to make it more scalable"), plus two comparators: the URL-minder
// service of §2.1 and the Harvest-style push notification of §3.1.
func expPolling(ctx context.Context, _ string) error {
	fmt.Println("    250-URL hotlist, 30 simulated days of daily runs; user visits changed pages.")
	fmt.Printf("    %-46s %10s %10s %9s\n", "condition", "requests", "req/run", "changed")
	type cond struct {
		name                             string
		thresholds, persistent, useProxy bool
	}
	conds := []cond{
		{"w3new baseline (poll every URL every run)", false, false, false},
		{"w3newer (thresholds + state cache)", true, true, false},
		{"w3newer + proxy-cache daemon", true, true, true},
	}
	var baseline int
	for i, c := range conds {
		reqs, changed := runCondition(ctx, c.name, c.thresholds, c.persistent, c.useProxy)
		if i == 0 {
			baseline = reqs
		}
		fmt.Printf("    %-46s %10d %10.1f %9d", c.name, reqs, float64(reqs)/30, changed)
		if i > 0 && reqs > 0 {
			fmt.Printf("   (%.1fx fewer)", float64(baseline)/float64(reqs))
		}
		fmt.Println()
	}
	umReqs, umMails := runURLMinder(ctx)
	fmt.Printf("    %-46s %10d %10.1f %9d   (%.1fx fewer; email says *that*, never *how*)\n",
		"URL-minder comparator (weekly GET+checksum)", umReqs, float64(umReqs)/30, umMails,
		float64(baseline)/float64(umReqs))
	pushReqs, pushNotifs := runPushNotify(ctx)
	fmt.Printf("    %-46s %10d %10.1f %9d   (providers push; w3newer consumes the relay)\n",
		"Harvest-style notification (§3.1)", pushReqs, float64(pushReqs)/30, pushNotifs)
	return nil
}

// runURLMinder measures the §2.1 URL-minder comparator on the same
// workload: a central service, GET+checksum, weekly per-URL cadence.
func runURLMinder(ctx context.Context) (requests, mails int) {
	clock := simclock.New(time.Time{})
	web, entries := buildPollingWeb(clock)
	outbox := &urlminder.Outbox{}
	svc := urlminder.New(webclient.New(web), outbox, clock)
	for _, e := range entries {
		svc.Register("fred@att.com", e.URL)
	}
	for day := 0; day < 30; day++ {
		web.Advance(24 * time.Hour)
		svc.Sweep(ctx)
	}
	h, g := web.TotalRequests()
	return h + g, len(outbox.Messages())
}

// runPushNotify measures the §3.1 ideal: every provider announces its
// changes to a notification hub, a local relay accumulates them, and
// w3newer answers entirely from the relay — zero polling.
func runPushNotify(ctx context.Context) (requests, reported int) {
	clock := simclock.New(time.Time{})
	web, entries := buildPollingWeb(clock)
	hub := notify.NewHub(clock)
	defer hub.Close()
	relay := notify.NewRelay(clock)
	pages := make([]*websim.Page, len(entries))
	lastVer := make([]int, len(entries))
	for i, e := range entries {
		hub.Subscribe(e.URL, relay, false)
		host, path, _ := strings.Cut(strings.TrimPrefix(e.URL, "http://"), "/")
		pages[i] = web.Site(host).Page("/" + path)
		lastVer[i] = pages[i].VersionCount()
		// Providers announce their current state on subscription, so
		// the relay covers every URL from the start.
		hub.Announce(e.URL, pages[i].Current().Time)
	}
	cfg, _ := w3config.ParseString("Default 2d\n")
	hist := hotlist.NewHistory()
	tr := tracker.New(webclient.New(web), cfg, hist, clock)
	tr.Proxy = relay
	tr.Opt.TrustOracle = true // the relay is push-current, not a cache
	// Mark everything visited once so only pushed changes matter.
	for _, e := range entries {
		hist.Visit(e.URL, clock.Now())
	}
	web.ResetRequestCounts()
	for day := 0; day < 30; day++ {
		web.Advance(24 * time.Hour)
		// Providers push announcements for the pages that changed today.
		for i, p := range pages {
			if v := p.VersionCount(); v != lastVer[i] {
				lastVer[i] = v
				hub.Announce(entries[i].URL, p.Current().Time)
			}
		}
		// Give the asynchronous deliveries a moment to drain.
		for relay.Received() < hub.Stats().Delivered {
			time.Sleep(time.Millisecond)
		}
		for _, r := range tr.Run(ctx, entries) {
			if r.Status == tracker.Changed {
				reported++
				hist.Visit(r.Entry.URL, clock.Now())
			}
		}
	}
	h, g := web.TotalRequests()
	return h + g, reported
}

// expServerSide reproduces the §8.3 economy of scale: per-user polling
// costs grow linearly with the user population, while a centralised AIDE
// server checks each distinct page once per sweep.
func expServerSide(ctx context.Context, _ string) error {
	fmt.Println("    100-URL pool (quarter changes daily); each user tracks 80; one daily cycle.")
	fmt.Println("    server-side also archives each changed page (its GETs are included).")
	fmt.Printf("    %-8s %22s %22s %10s\n", "users", "client-side requests", "server-side requests", "ratio")
	for _, users := range []int{1, 10, 100} {
		clientReqs := measureClientSide(ctx, users)
		serverReqs := measureServerSide(ctx, users)
		fmt.Printf("    %-8d %22d %22d %9.1fx\n",
			users, clientReqs, serverReqs, float64(clientReqs)/float64(serverReqs))
	}
	return nil
}

// userEntries deterministically samples 80 of the 100 pool URLs for a
// user, guaranteeing heavy overlap between users.
func userEntries(user int) []hotlist.Entry {
	rng := rand.New(rand.NewSource(int64(user)))
	perm := rng.Perm(100)[:80]
	entries := make([]hotlist.Entry, 0, 80)
	for _, i := range perm {
		entries = append(entries, hotlist.Entry{
			URL: fmt.Sprintf("http://pool.example.com/page%d.html", i),
		})
	}
	return entries
}

func buildPool(clock *simclock.Sim) *websim.Web {
	web := websim.New(clock)
	for i := 0; i < 100; i++ {
		page := web.Site("pool.example.com").Page(fmt.Sprintf("/page%d.html", i))
		// A quarter of the pool changes on any given day.
		web.Evolve(page, 4*24*time.Hour, websim.EditGenerator("Pool", 6, int64(i)))
	}
	return web
}

func measureClientSide(ctx context.Context, users int) int {
	clock := simclock.New(time.Time{})
	web := buildPool(clock)
	cfg, _ := w3config.ParseString("Default 0\n")
	web.Advance(24 * time.Hour)
	for u := 0; u < users; u++ {
		tr := tracker.New(webclient.New(web), cfg, hotlist.NewHistory(), clock)
		tr.Run(ctx, userEntries(u))
	}
	h, g := web.TotalRequests()
	return h + g
}

func measureServerSide(ctx context.Context, users int) int {
	clock := simclock.New(time.Time{})
	web := buildPool(clock)
	cfg, _ := w3config.ParseString("Default 0\n")
	dir, err := os.MkdirTemp("", "aide-serverside-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	client := webclient.New(web)
	fac, err := snapshot.New(dir, client, clock)
	if err != nil {
		panic(err)
	}
	srv := aide.NewServer(fac, client, cfg, clock)
	for u := 0; u < users; u++ {
		for _, e := range userEntries(u) {
			srv.Register(fmt.Sprintf("user%d@example.com", u), aide.Registration{URL: e.URL})
		}
	}
	// Pre-archive (first sweep fetches everything once), then measure a
	// steady-state daily sweep.
	srv.TrackAll(ctx)
	web.Advance(24 * time.Hour)
	web.ResetRequestCounts()
	srv.TrackAll(ctx)
	h, g := web.TotalRequests()
	return h + g
}
