// Command webweaver runs the WebWeaver wiki (§1): a WikiWikiWeb clone
// that stores its version archive in AIDE's snapshot repository and uses
// HtmlDiff to show each reader the differences from the version *they*
// last read.
//
// Usage:
//
//	webweaver [-addr :8081] [-data ./webweaver-data] [-front FrontPage]
//
// Then browse to http://localhost:8081/?user=you — edit pages, follow
// RecentChanges, and use "What changed?" for personalised diffs.
package main

import (
	"flag"
	"log"
	"net/http"

	"aide/internal/snapshot"
	"aide/internal/wiki"
)

func main() {
	addr := flag.String("addr", ":8081", "listen address")
	dataDir := flag.String("data", "./webweaver-data", "data directory for the page archive")
	front := flag.String("front", "FrontPage", "the document served at /")
	flag.Parse()

	fac, err := snapshot.New(*dataDir, nil, nil)
	if err != nil {
		log.Fatal("webweaver: ", err)
	}
	w := wiki.New(fac, nil)
	srv := wiki.NewServer(w)
	srv.FrontPage = *front

	log.Printf("webweaver: serving on %s (archive in %s)", *addr, *dataDir)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
