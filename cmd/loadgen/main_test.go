package main

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

// TestPercentileKnownDistribution checks the estimator against
// distributions whose order statistics are known exactly.
func TestPercentileKnownDistribution(t *testing.T) {
	// 1..100: rank interpolation gives p50 = 50.5, p95 = 95.05, p99 = 99.01.
	uniform := make([]float64, 100)
	for i := range uniform {
		uniform[i] = float64(i + 1)
	}
	for _, tc := range []struct {
		q, want float64
	}{
		{0.50, 50.5},
		{0.95, 95.05},
		{0.99, 99.01},
		{1.00, 100},
	} {
		if got := percentile(uniform, tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("percentile(1..100, %g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	if got := percentile([]float64{7}, 0.99); got != 7 {
		t.Errorf("single sample p99 = %g, want 7", got)
	}
	if !math.IsNaN(percentile(nil, 0.5)) || !math.IsNaN(percentile(uniform, 0)) {
		t.Error("empty input and q=0 should be NaN")
	}
}

// TestPercentileMatchesSortedRank cross-checks against a brute-force
// definition on a shuffled heavy-tailed sample.
func TestPercentileMatchesSortedRank(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = math.Exp(rng.NormFloat64()) // log-normal tail
	}
	sort.Float64s(samples)
	// p99 must sit between the order statistics bracketing rank 0.99*(n-1).
	p99 := percentile(samples, 0.99)
	if p99 < samples[989] || p99 > samples[990] {
		t.Errorf("p99 = %g outside [%g, %g]", p99, samples[989], samples[990])
	}
	if p50 := percentile(samples, 0.5); p50 < samples[499] || p50 > samples[500] {
		t.Errorf("p50 = %g outside the middle order statistics", p50)
	}
}

func TestParseMix(t *testing.T) {
	mix, err := parseMix("diff=4, history=3,co=0")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0].name != "diff" || mix[0].weight != 4 || mix[1].name != "history" {
		t.Errorf("mix = %+v", mix)
	}
	for _, bad := range []string{"", "diff", "diff=x", "bogus=1", "diff=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
	// Weighted draw covers every entry.
	rng := rand.New(rand.NewSource(1))
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		seen[pickEndpoint(mix, rng)] = true
	}
	if !seen["diff"] || !seen["history"] {
		t.Errorf("draws missed an endpoint: %v", seen)
	}
}

// TestGateReport checks the p99 geomean gate passes a flat run and
// rejects a regressed one.
func TestGateReport(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	if err := os.WriteFile(basePath, []byte(`{
		"endpoints": {
			"diff":    {"requests": 10, "p99_ms": 2.0},
			"history": {"requests": 10, "p99_ms": 4.0}
		}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	flat := Report{Endpoints: map[string]EndpointStats{
		"diff":    {Requests: 10, P99Ms: 2.2},
		"history": {Requests: 10, P99Ms: 3.8},
	}}
	if _, err := gateReport(flat, basePath, 1.5); err != nil {
		t.Errorf("flat run gated: %v", err)
	}
	slow := Report{Endpoints: map[string]EndpointStats{
		"diff":    {Requests: 10, P99Ms: 9.0},
		"history": {Requests: 10, P99Ms: 20.0},
	}}
	if _, err := gateReport(slow, basePath, 1.5); err == nil {
		t.Error("4x regression passed the gate")
	}
	missing := Report{Endpoints: map[string]EndpointStats{
		"diff": {Requests: 10, P99Ms: 2.0},
	}}
	if _, err := gateReport(missing, basePath, 1.5); err == nil {
		t.Error("run missing a baseline endpoint passed the gate")
	}
}

// TestSelfHostSmoke runs the whole harness briefly: seeded pages served
// over loopback, a load burst, nonzero histograms, and a >=3-hop
// cross-process trace through the replica.
func TestSelfHostSmoke(t *testing.T) {
	h, err := selfHost(4, 2, 2, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if len(h.Pages) != 4 || len(h.Pages[0].Revs) != 2 {
		t.Fatalf("pages = %+v", h.Pages)
	}
	if h.Pages[0].First.IsZero() || !h.Pages[0].Last.After(h.Pages[0].First) {
		t.Fatalf("page datetime range = [%s, %s]", h.Pages[0].First, h.Pages[0].Last)
	}
	mix, _ := parseMix("diff=1,history=1,co=1,timegate=1,timemap=1,memdiff=1")
	report := runLoad(h.BaseURL, h.Pages, mix, "latest", 2, 300*time.Millisecond, 7)
	if report.Requests == 0 || report.Errors != 0 {
		t.Fatalf("report = %+v", report)
	}
	for _, name := range []string{"diff", "history", "co", "timegate", "timemap", "memdiff"} {
		st, ok := report.Endpoints[name]
		if !ok || st.Requests == 0 || math.IsNaN(st.P99Ms) {
			t.Errorf("endpoint %s stats = %+v (ok=%v)", name, st, ok)
		}
	}
	if err := checkHistograms(h.BaseURL, mix); err != nil {
		t.Errorf("histograms: %v", err)
	}
	hops, err := traceCheck(h, 7)
	if err != nil {
		t.Fatal(err)
	}
	if hops < 3 {
		t.Errorf("trace hops = %d, want >= 3", hops)
	}
}
