package main

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRequestURLDiffPairs(t *testing.T) {
	p := page{URL: "http://h/p", Revs: []string{"1.1", "1.2", "1.3"}}
	rng := rand.New(rand.NewSource(1))
	// span: the whole history, oldest vs newest.
	u := requestURL("http://t", "diff", "span", p, rng)
	if !strings.Contains(u, "r1=1.1") || !strings.Contains(u, "r2=1.3") {
		t.Errorf("span pair = %s", u)
	}
	// latest: the adjacent pair the server pre-warms on check-in.
	u = requestURL("http://t", "diff", "latest", p, rng)
	if !strings.Contains(u, "r1=1.2") || !strings.Contains(u, "r2=1.3") {
		t.Errorf("latest pair = %s", u)
	}
	// A single-revision page degrades to comparing the revision with
	// itself rather than indexing out of bounds.
	one := page{URL: "http://h/q", Revs: []string{"1.1"}}
	u = requestURL("http://t", "diff", "latest", one, rng)
	if !strings.Contains(u, "r1=1.1") || !strings.Contains(u, "r2=1.1") {
		t.Errorf("single-rev latest pair = %s", u)
	}
	// co picks an existing revision.
	u = requestURL("http://t", "co", "span", p, rng)
	if !strings.Contains(u, "/co?url=") || !strings.Contains(u, "&rev=1.") {
		t.Errorf("co url = %s", u)
	}
}

// TestDiscoverPagesFromCorpus checks -target discovery against a fake
// /debug/corpus, including skipping pages with no revisions and the
// error for servers that predate the endpoint.
func TestDiscoverPagesFromCorpus(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/corpus" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, `{"pages":[
			{"url":"http://h/a","revs":["1.1","1.2"]},
			{"url":"http://h/empty","revs":[]},
			{"url":"http://h/b","revs":["1.1"]}
		]}`)
	}))
	defer ts.Close()

	pages, err := discoverPages(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 2 || pages[0].URL != "http://h/a" || pages[1].URL != "http://h/b" {
		t.Fatalf("pages = %+v", pages)
	}
	if len(pages[0].Revs) != 2 || pages[0].Revs[1] != "1.2" {
		t.Errorf("revs = %+v", pages[0].Revs)
	}

	old := httptest.NewServer(http.NotFoundHandler())
	defer old.Close()
	if _, err := discoverPages(old.URL, nil); err == nil || !strings.Contains(err.Error(), "predates") {
		t.Errorf("pre-corpus server error = %v", err)
	}
}

// TestScrapeDiffCache checks the /metrics parse against the exact line
// format the obs registry emits (counters gain a _total suffix, dots
// become underscores).
func TestScrapeDiffCache(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `# TYPE snapshot_diffcache_hits_total counter
snapshot_diffcache_hits_total 42
snapshot_diffcache_misses_total 7
diffcache_prewarm_computed_total 13
unrelated_metric 99
`)
	}))
	defer ts.Close()

	c, err := scrapeDiffCache(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if c.Hits != 42 || c.Misses != 7 || c.PrewarmComputed != 13 {
		t.Errorf("counters = %+v", c)
	}
}
