package main

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aide/internal/httpdate"
)

func TestRequestURLDiffPairs(t *testing.T) {
	p := page{URL: "http://h/p", Revs: []string{"1.1", "1.2", "1.3"}}
	rng := rand.New(rand.NewSource(1))
	// span: the whole history, oldest vs newest.
	u, _ := requestURL("http://t", "diff", "span", p, rng)
	if !strings.Contains(u, "r1=1.1") || !strings.Contains(u, "r2=1.3") {
		t.Errorf("span pair = %s", u)
	}
	// latest: the adjacent pair the server pre-warms on check-in.
	u, _ = requestURL("http://t", "diff", "latest", p, rng)
	if !strings.Contains(u, "r1=1.2") || !strings.Contains(u, "r2=1.3") {
		t.Errorf("latest pair = %s", u)
	}
	// A single-revision page degrades to comparing the revision with
	// itself rather than indexing out of bounds.
	one := page{URL: "http://h/q", Revs: []string{"1.1"}}
	u, _ = requestURL("http://t", "diff", "latest", one, rng)
	if !strings.Contains(u, "r1=1.1") || !strings.Contains(u, "r2=1.1") {
		t.Errorf("single-rev latest pair = %s", u)
	}
	// co picks an existing revision.
	u, _ = requestURL("http://t", "co", "span", p, rng)
	if !strings.Contains(u, "/co?url=") || !strings.Contains(u, "&rev=1.") {
		t.Errorf("co url = %s", u)
	}
}

// TestRequestURLTimeTravel checks the RFC 7089 endpoints: timegate draws
// an in-range Accept-Datetime, memdiff draws an ordered 14-digit pair,
// and pages without datetimes degrade to clamped requests.
func TestRequestURLTimeTravel(t *testing.T) {
	p := page{
		URL: "http://h/p", Revs: []string{"1.1", "1.2"},
		First: time.Date(1996, 6, 1, 12, 0, 0, 0, time.UTC),
		Last:  time.Date(1996, 6, 5, 12, 0, 0, 0, time.UTC),
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		u, adt := requestURL("http://t", "timegate", "span", p, rng)
		if !strings.HasPrefix(u, "http://t/timegate?url=") {
			t.Fatalf("timegate url = %s", u)
		}
		when, err := httpdate.Parse(adt)
		if err != nil {
			t.Fatalf("Accept-Datetime %q: %v", adt, err)
		}
		if when.Before(p.First) || when.After(p.Last) {
			t.Fatalf("Accept-Datetime %s outside [%s, %s]", when, p.First, p.Last)
		}
	}
	u, adt := requestURL("http://t", "timemap", "span", p, rng)
	if !strings.HasPrefix(u, "http://t/timemap/link?url=") || adt != "" {
		t.Errorf("timemap request = %s (adt %q)", u, adt)
	}
	for i := 0; i < 50; i++ {
		u, adt = requestURL("http://t", "memdiff", "span", p, rng)
		if adt != "" || !strings.HasPrefix(u, "http://t/memento/diff?url=") {
			t.Fatalf("memdiff request = %s (adt %q)", u, adt)
		}
		var from, to string
		for _, kv := range strings.Split(strings.SplitN(u, "?", 2)[1], "&") {
			if v, ok := strings.CutPrefix(kv, "from="); ok {
				from = v
			}
			if v, ok := strings.CutPrefix(kv, "to="); ok {
				to = v
			}
		}
		if len(from) != 14 || len(to) != 14 || from > to {
			t.Fatalf("memdiff bounds from=%q to=%q in %s", from, to, u)
		}
	}
	// No known datetime range: timegate sends no header (negotiates to
	// the latest) and memdiff clamps from the epoch.
	bare := page{URL: "http://h/q", Revs: []string{"1.1"}}
	if _, adt := requestURL("http://t", "timegate", "span", bare, rng); adt != "" {
		t.Errorf("bare timegate Accept-Datetime = %q", adt)
	}
	u, _ = requestURL("http://t", "memdiff", "span", bare, rng)
	if !strings.Contains(u, "from=19700101000000") || strings.Contains(u, "to=") {
		t.Errorf("bare memdiff url = %s", u)
	}
}

// TestDiscoverPagesFromCorpus checks -target discovery against a fake
// /debug/corpus, including skipping pages with no revisions and the
// error for servers that predate the endpoint.
func TestDiscoverPagesFromCorpus(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/corpus" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, `{"pages":[
			{"url":"http://h/a","revs":["1.1","1.2"],"first":"1996-06-01T12:00:00Z","last":"1996-06-02T12:00:00Z"},
			{"url":"http://h/empty","revs":[]},
			{"url":"http://h/b","revs":["1.1"]}
		]}`)
	}))
	defer ts.Close()

	pages, err := discoverPages(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 2 || pages[0].URL != "http://h/a" || pages[1].URL != "http://h/b" {
		t.Fatalf("pages = %+v", pages)
	}
	if len(pages[0].Revs) != 2 || pages[0].Revs[1] != "1.2" {
		t.Errorf("revs = %+v", pages[0].Revs)
	}
	if pages[0].First != time.Date(1996, 6, 1, 12, 0, 0, 0, time.UTC) ||
		pages[0].Last != time.Date(1996, 6, 2, 12, 0, 0, 0, time.UTC) {
		t.Errorf("datetime range = [%s, %s]", pages[0].First, pages[0].Last)
	}
	// Pre-datetime servers leave the range zero.
	if !pages[1].First.IsZero() || !pages[1].Last.IsZero() {
		t.Errorf("missing datetimes parsed as [%s, %s]", pages[1].First, pages[1].Last)
	}

	old := httptest.NewServer(http.NotFoundHandler())
	defer old.Close()
	if _, err := discoverPages(old.URL, nil); err == nil || !strings.Contains(err.Error(), "predates") {
		t.Errorf("pre-corpus server error = %v", err)
	}
}

// TestScrapeDiffCache checks the /metrics parse against the exact line
// format the obs registry emits (counters gain a _total suffix, dots
// become underscores).
func TestScrapeDiffCache(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `# TYPE snapshot_diffcache_hits_total counter
snapshot_diffcache_hits_total 42
snapshot_diffcache_misses_total 7
diffcache_prewarm_computed_total 13
unrelated_metric 99
`)
	}))
	defer ts.Close()

	c, err := scrapeDiffCache(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if c.Hits != 42 || c.Misses != 7 || c.PrewarmComputed != 13 {
		t.Errorf("counters = %+v", c)
	}
}
