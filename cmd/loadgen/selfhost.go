package main

// Self-hosting: with no -target, loadgen builds the whole serving stack
// in-process — a websim simulated web, a sharded snapshot facility that
// archived -revs revisions of every simulated page through it, and the
// snapshotd HTTP face on a loopback listener. Requests still cross a real
// TCP socket, so the run exercises the same handler, middleware, and
// trace-propagation path a deployed server does, without touching the
// network or needing fixtures on disk.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"aide/internal/obs"
	"aide/internal/simclock"
	"aide/internal/snapshot"
	"aide/internal/webclient"
	"aide/internal/websim"
)

// harness is a self-hosted serving stack: the leader (always) and a
// replica with a replicator between them (when tracing is asserted).
type harness struct {
	BaseURL    string
	ReplicaURL string
	Pages      []page

	fac     *snapshot.Facility
	repl    *snapshot.Replicator
	cleanup []func()
}

func (h *harness) Close() {
	for i := len(h.cleanup) - 1; i >= 0; i-- {
		h.cleanup[i]()
	}
}

// serve starts an HTTP server for handler on a loopback port and returns
// its base URL.
func (h *harness) serve(handler http.Handler) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	h.cleanup = append(h.cleanup, func() { srv.Close() })
	return "http://" + ln.Addr().String(), nil
}

// selfHost builds the websim-backed stack: urls pages × revs archived
// revisions, shards shard directories, plus a replica when withReplica.
func selfHost(urls, revs, shards int, seed int64, withReplica bool) (*harness, error) {
	if urls < 1 || revs < 1 {
		return nil, fmt.Errorf("need at least one page and one revision (-urls %d -revs %d)", urls, revs)
	}
	h := &harness{}
	ok := false
	defer func() {
		if !ok {
			h.Close()
		}
	}()

	dir, err := os.MkdirTemp("", "loadgen-*")
	if err != nil {
		return nil, err
	}
	h.cleanup = append(h.cleanup, func() { os.RemoveAll(dir) })

	clock := simclock.New(time.Date(1996, 1, 15, 9, 0, 0, 0, time.UTC))
	web := websim.New(clock)
	site := web.Site("sim.example")
	fac, err := snapshot.NewSharded(dir, shards, webclient.New(web), clock)
	if err != nil {
		return nil, err
	}
	h.fac = fac
	fac.EnablePrewarm(snapshot.DefaultPrewarmWorkers)

	// Archive revs versions of every page. Each revision body is seeded
	// filler, distinct per (page, revision), so diffs have real work.
	ctx := context.Background()
	paths := make([]string, urls)
	for i := range paths {
		paths[i] = fmt.Sprintf("/page-%03d", i)
	}
	for r := 0; r < revs; r++ {
		for i, path := range paths {
			gen := websim.EditGenerator(fmt.Sprintf("Page %d", i), 3, seed+int64(i))
			site.Page(path).Set(gen(r))
			if _, err := fac.Remember(ctx, "load", site.Page(path).URL()); err != nil {
				return nil, fmt.Errorf("seeding %s rev %d: %v", path, r+1, err)
			}
		}
		web.Advance(24 * time.Hour)
	}
	for _, path := range paths {
		u := site.Page(path).URL()
		rl, _, err := fac.History("load", u)
		if err != nil {
			return nil, err
		}
		p := page{URL: u}
		for _, rev := range rl {
			p.Revs = append(p.Revs, rev.Num)
		}
		if len(p.Revs) == 0 {
			return nil, fmt.Errorf("no revisions archived for %s", u)
		}
		// History lists newest-first; the time-travel endpoints draw
		// Accept-Datetime instants from [First, Last].
		p.First, p.Last = rl[len(rl)-1].Date, rl[0].Date
		h.Pages = append(h.Pages, p)
	}

	// Seeding scheduled a pre-warm per check-in; settle before the
	// measured window so a warm run starts with the hot pairs cached.
	fac.WaitPrewarm()

	srv := snapshot.NewServer(fac)
	srv.KeepaliveInterval = 0
	if h.BaseURL, err = h.serve(srv.Handler()); err != nil {
		return nil, err
	}

	if withReplica {
		rdir, err := os.MkdirTemp("", "loadgen-replica-*")
		if err != nil {
			return nil, err
		}
		h.cleanup = append(h.cleanup, func() { os.RemoveAll(rdir) })
		rfac, err := snapshot.NewSharded(rdir, shards, nil, clock)
		if err != nil {
			return nil, err
		}
		rsrv := snapshot.NewServer(rfac)
		rsrv.KeepaliveInterval = 0
		if h.ReplicaURL, err = h.serve(rsrv.Handler()); err != nil {
			return nil, err
		}
		h.repl = snapshot.NewReplicator(fac, webclient.New(&webclient.HTTPTransport{}), []string{h.ReplicaURL}, seed)
	}
	ok = true
	return h, nil
}

// discoverPages returns the workload's page set: the harness's seeded
// pages when self-hosting, otherwise the live target's corpus from its
// /debug/corpus listing (every archived URL with its revision numbers,
// oldest first — exactly the material requestURL needs).
func discoverPages(base string, h *harness) ([]page, error) {
	if h != nil {
		return h.Pages, nil
	}
	resp, err := http.Get(base + "/debug/corpus")
	if err != nil {
		return nil, fmt.Errorf("target unreachable: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s/debug/corpus: HTTP %d (server predates the corpus listing?)", base, resp.StatusCode)
	}
	var listing struct {
		Pages []struct {
			URL   string   `json:"url"`
			Revs  []string `json:"revs"`
			First string   `json:"first"`
			Last  string   `json:"last"`
		} `json:"pages"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		return nil, fmt.Errorf("parsing /debug/corpus: %v", err)
	}
	var pages []page
	for _, p := range listing.Pages {
		if len(p.Revs) == 0 {
			continue
		}
		pg := page{URL: p.URL, Revs: p.Revs}
		// Older servers omit the datetimes; the time-travel endpoints
		// then fall back to clamped requests.
		if t, err := time.Parse(time.RFC3339, p.First); err == nil {
			pg.First = t
		}
		if t, err := time.Parse(time.RFC3339, p.Last); err == nil {
			pg.Last = t
		}
		pages = append(pages, pg)
	}
	return pages, nil
}

// traceCheck runs one leader → replica sync under a distinctly-seeded
// client tracer, then reads the replica's /debug/traces over HTTP and
// returns the deepest parent-hop count from any of its http.server spans
// back to the client's root span — the cross-process trace depth.
func traceCheck(h *harness, seed int64) (int, error) {
	if h == nil || h.repl == nil {
		return 0, fmt.Errorf("trace check needs the self-hosted replica")
	}
	client := obs.NewTracer(512)
	client.Seed = obs.SeedFromPID() ^ uint64(seed) | 1
	ctx := obs.WithTracer(context.Background(), client)
	if _, _, err := h.repl.SyncAll(ctx); err != nil {
		return 0, fmt.Errorf("replica sync: %v", err)
	}

	byID := map[uint64]obs.SpanRecord{}
	var trace string
	for _, sp := range client.Spans() {
		byID[sp.ID] = sp
		if sp.Name == "replica.sync" {
			trace = sp.Trace
		}
	}
	if trace == "" {
		return 0, fmt.Errorf("no replica.sync span on the client tracer")
	}

	resp, err := http.Get(h.ReplicaURL + "/debug/traces?trace=" + trace)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var remote []obs.SpanRecord
	if err := json.NewDecoder(resp.Body).Decode(&remote); err != nil {
		return 0, fmt.Errorf("parsing /debug/traces: %v", err)
	}

	max := 0
	for _, sp := range remote {
		if sp.Name != "http.server" {
			continue
		}
		hops := 0
		cur, found := byID[sp.Parent]
		for found {
			hops++
			cur, found = byID[cur.Parent]
		}
		if hops > max {
			max = hops
		}
	}
	if max == 0 {
		return 0, fmt.Errorf("no http.server span in trace %s joined the client chain (%d remote spans)", trace, len(remote))
	}
	return max, nil
}
