// Command loadgen is a closed-loop latency/SLO harness for the serving
// path: N workers issue a weighted mix of /diff, /history, and /co
// requests for a fixed duration and the run reports per-endpoint
// p50/p95/p99 latency and throughput as JSON.
//
// The mix also accepts the RFC 7089 time-travel endpoints: "timegate"
// issues /timegate with a random Accept-Datetime drawn from the page's
// archived range and follows the 302 to the memento, "timemap" fetches
// the page's /timemap/link listing, and "memdiff" requests
// /memento/diff between two random datetimes. Page datetime ranges
// come from the harness's own seeding when self-hosting and from the
// target's /debug/corpus first/last fields otherwise.
//
// Against a running server:
//
//	loadgen -target http://localhost:8080 -c 16 -d 30s
//
// With no -target, loadgen self-hosts a websim-backed snapshotd: a
// simulated web of -urls pages with -revs archived revisions each,
// sharded -shards ways, served on a loopback listener. Self-hosting
// keeps the harness reproducible (seeded workload, no network) and is
// what CI runs.
//
// Baseline workflow, mirroring benchgate:
//
//	loadgen -emit BENCH_serving.json            # write a new baseline
//	loadgen -baseline BENCH_serving.json        # gate: exit 1 when the
//	                                            # geomean p99 slowdown
//	                                            # exceeds -max-ratio
//
// SLO assertions for CI smoke runs:
//
//	-require-histograms     fail unless the target's /metrics shows a
//	                        nonzero request-duration histogram for every
//	                        endpoint in the mix
//	-require-trace-hops N   (self-host) run a leader → replica sync over
//	                        HTTP and fail unless the resulting trace
//	                        chains at least N parent hops from the
//	                        replica's server span back to the client root
//	-min-hit-rate R         fail unless the diff-cache hit rate over the
//	                        measured window (scraped from /metrics before
//	                        and after) reaches R — the warm-pass guard
//	-require-prewarm        fail unless the server pre-warmed at least one
//	                        diff during the run
//
// -warmup D drives the same mix for D before the measured window, so a
// warm pass measures the cache steady state rather than cold misses.
// -diff-pair picks which revisions /diff compares: "latest" (previous vs
// newest — the pair the server pre-warms on check-in) or "span" (oldest
// vs newest, the historical default).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"aide/internal/httpdate"
	"aide/internal/memento"
)

func main() {
	var (
		target    = flag.String("target", "", "base URL of a running snapshotd (empty = self-host a websim-backed instance)")
		conc      = flag.Int("c", 8, "concurrent closed-loop workers")
		dur       = flag.Duration("d", 10*time.Second, "load duration")
		mixSpec   = flag.String("mix", "diff=4,history=3,co=3", "endpoint weights over diff, history, co, timegate, timemap, memdiff")
		urls      = flag.Int("urls", 32, "self-host: distinct simulated pages")
		revs      = flag.Int("revs", 3, "self-host: archived revisions per page")
		shards    = flag.Int("shards", 2, "self-host: shard count for the snapshot store")
		seed      = flag.Int64("seed", 1, "workload RNG seed")
		outPath   = flag.String("out", "", "write the JSON report here (default stdout)")
		emitPath  = flag.String("emit", "", "write the report as a serving baseline instead of gating")
		basePath  = flag.String("baseline", "", "baseline JSON to gate per-endpoint p99s against")
		maxRatio  = flag.Float64("max-ratio", 1.5, "max allowed geomean p99 slowdown (new/old) in gate mode")
		traceHops = flag.Int("require-trace-hops", 0, "self-host: fail unless a replica sync traces at least this many cross-process parent hops")
		reqHist   = flag.Bool("require-histograms", false, "fail unless /metrics shows nonzero duration histograms for every mix endpoint")
		warmup    = flag.Duration("warmup", 0, "drive the mix for this long before the measured window (cache warm-up)")
		diffPair  = flag.String("diff-pair", "span", "revisions /diff compares: latest (previous vs newest, the pre-warmed pair) or span (oldest vs newest)")
		minHit    = flag.Float64("min-hit-rate", -1, "fail unless the measured window's diff-cache hit rate reaches this fraction (-1 disables)")
		reqWarm   = flag.Bool("require-prewarm", false, "fail unless the server pre-warmed at least one diff")
		profPath  = flag.String("cpuprofile", "", "write a CPU profile of the measured window here")
	)
	flag.Parse()
	if *diffPair != "latest" && *diffPair != "span" {
		fatal(fmt.Errorf("bad -diff-pair %q (want latest or span)", *diffPair))
	}

	mix, err := parseMix(*mixSpec)
	if err != nil {
		fatal(err)
	}

	base := *target
	var h *harness
	if base == "" {
		h, err = selfHost(*urls, *revs, *shards, *seed, *traceHops > 0)
		if err != nil {
			fatal(err)
		}
		defer h.Close()
		base = h.BaseURL
	} else if *traceHops > 0 {
		fatal(fmt.Errorf("-require-trace-hops needs the self-hosted replica (drop -target)"))
	}

	pages, err := discoverPages(base, h)
	if err != nil {
		fatal(err)
	}
	if len(pages) == 0 {
		fatal(fmt.Errorf("no archived pages to load against at %s", base))
	}

	if *warmup > 0 {
		// Same mix, different seed stream, samples discarded: the point
		// is to leave the cache and the connection pool warm.
		runLoad(base, pages, mix, *diffPair, *conc, *warmup, *seed+1_000_003)
	}

	before, scrapeErr := scrapeDiffCache(base)
	if *profPath != "" {
		pf, err := os.Create(*profPath)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fatal(err)
		}
	}
	report := runLoad(base, pages, mix, *diffPair, *conc, *dur, *seed)
	if *profPath != "" {
		pprof.StopCPUProfile()
	}
	report.DiffPair = *diffPair
	failures := 0

	if scrapeErr == nil {
		var after diffCacheCounters
		after, scrapeErr = scrapeDiffCache(base)
		if scrapeErr == nil {
			hits, misses := after.Hits-before.Hits, after.Misses-before.Misses
			if hits+misses > 0 {
				rate := hits / (hits + misses)
				report.DiffCacheHitRate = &rate
			}
			report.PrewarmComputed = int64(after.PrewarmComputed)
		}
	}
	if *minHit >= 0 {
		switch {
		case scrapeErr != nil:
			fmt.Fprintf(os.Stderr, "loadgen: -min-hit-rate: scraping /metrics: %v\n", scrapeErr)
			failures++
		case report.DiffCacheHitRate == nil:
			fmt.Fprintln(os.Stderr, "loadgen: -min-hit-rate: no diff-cache traffic in the measured window")
			failures++
		case *report.DiffCacheHitRate < *minHit:
			fmt.Fprintf(os.Stderr, "loadgen: diff-cache hit rate %.3f below required %.3f\n",
				*report.DiffCacheHitRate, *minHit)
			failures++
		}
	}
	if *reqWarm {
		if scrapeErr != nil {
			fmt.Fprintf(os.Stderr, "loadgen: -require-prewarm: scraping /metrics: %v\n", scrapeErr)
			failures++
		} else if report.PrewarmComputed == 0 {
			fmt.Fprintln(os.Stderr, "loadgen: server pre-warmed no diffs (diffcache_prewarm_computed_total is 0)")
			failures++
		}
	}

	if *traceHops > 0 {
		hops, err := traceCheck(h, *seed)
		if err != nil {
			fatal(err)
		}
		report.TraceHops = hops
		if hops < *traceHops {
			fmt.Fprintf(os.Stderr, "loadgen: trace chained %d hops, want >= %d\n", hops, *traceHops)
			failures++
		}
	}
	if *reqHist {
		if err := checkHistograms(base, mix); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			failures++
		}
	}

	if *basePath != "" && *emitPath == "" {
		msg, err := gateReport(report, *basePath, *maxRatio)
		fmt.Fprint(os.Stderr, msg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			failures++
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *emitPath != "" {
		if err := os.WriteFile(*emitPath, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote baseline %s\n", *emitPath)
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			fatal(err)
		}
	} else {
		os.Stdout.Write(data)
	}
	if failures > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
	os.Exit(1)
}

// Report is the run summary and doubles as the BENCH_serving.json
// baseline schema: gate mode compares each endpoint's p99 against the
// committed baseline's.
type Report struct {
	Concurrency int                      `json:"concurrency"`
	DurationSec float64                  `json:"duration_sec"`
	Requests    int                      `json:"requests"`
	Errors      int                      `json:"errors"`
	RPS         float64                  `json:"rps"`
	Endpoints   map[string]EndpointStats `json:"endpoints"`
	TraceHops   int                      `json:"trace_hops,omitempty"`
	// DiffPair records which revisions the /diff requests compared
	// ("latest" or "span") so a baseline is only compared like-for-like.
	DiffPair string `json:"diff_pair,omitempty"`
	// DiffCacheHitRate is hits/(hits+misses) on the server's rendered-diff
	// cache over the measured window, scraped from /metrics (absent when
	// the window saw no diff traffic or the scrape failed).
	DiffCacheHitRate *float64 `json:"diff_cache_hit_rate,omitempty"`
	// PrewarmComputed is the server's lifetime count of pre-warmed diffs
	// at the end of the run.
	PrewarmComputed int64 `json:"prewarm_computed,omitempty"`
}

// EndpointStats summarises one endpoint's latency distribution.
type EndpointStats struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	RPS      float64 `json:"rps"`
}

// weighted is one entry of the workload mix.
type weighted struct {
	name   string
	weight int
}

var knownEndpoints = map[string]bool{
	"diff": true, "history": true, "co": true,
	"timegate": true, "timemap": true, "memdiff": true,
}

// endpointLabels maps a mix name to the mux pattern the RED middleware
// labels its requests with — what -require-histograms greps /metrics
// for.
var endpointLabels = map[string]string{
	"diff":     "/diff",
	"history":  "/history",
	"co":       "/co",
	"timegate": "/timegate",
	"timemap":  "/timemap/link",
	"memdiff":  "/memento/diff",
}

// parseMix parses "diff=4,history=3,co=3" into a weighted endpoint list.
func parseMix(spec string) ([]weighted, error) {
	var mix []weighted
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, w, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want name=weight)", part)
		}
		n, err := strconv.Atoi(w)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad mix weight in %q", part)
		}
		if !knownEndpoints[name] {
			return nil, fmt.Errorf("unknown mix endpoint %q (have diff, history, co, timegate, timemap, memdiff)", name)
		}
		if n > 0 {
			mix = append(mix, weighted{name, n})
		}
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty workload mix %q", spec)
	}
	return mix, nil
}

// pickEndpoint draws an endpoint from the mix by weight.
func pickEndpoint(mix []weighted, rng *rand.Rand) string {
	total := 0
	for _, m := range mix {
		total += m.weight
	}
	n := rng.Intn(total)
	for _, m := range mix {
		if n < m.weight {
			return m.name
		}
		n -= m.weight
	}
	return mix[len(mix)-1].name
}

// page is one archived URL and its revision numbers, the raw material a
// workload request is built from. First and Last bound the page's
// archived datetime range; zero values degrade the time-travel
// endpoints to boundary-clamped requests.
type page struct {
	URL   string
	Revs  []string
	First time.Time
	Last  time.Time
}

// randInstant draws a uniform instant from the page's archived range.
func (p page) randInstant(rng *rand.Rand) time.Time {
	if p.First.IsZero() || !p.Last.After(p.First) {
		return p.First
	}
	return p.First.Add(time.Duration(rng.Int63n(int64(p.Last.Sub(p.First)) + 1)))
}

// requestURL renders one workload request against base, returning the
// URL and the Accept-Datetime header value ("" for none). diffPair
// picks the /diff revisions: "latest" compares the newest pair — the
// one the server pre-warms after a check-in — "span" the oldest vs the
// newest.
func requestURL(base, endpoint, diffPair string, p page, rng *rand.Rand) (reqURL, acceptDatetime string) {
	esc := url.QueryEscape(p.URL)
	switch endpoint {
	case "history":
		return base + "/history?url=" + esc, ""
	case "co":
		rev := p.Revs[rng.Intn(len(p.Revs))]
		return base + "/co?url=" + esc + "&rev=" + rev, ""
	case "timegate":
		// Negotiate to a random instant in the archived range; with no
		// range known, no header — the gate sends the latest memento.
		if p.First.IsZero() {
			return base + "/timegate?url=" + esc, ""
		}
		return base + "/timegate?url=" + esc, httpdate.Format(p.randInstant(rng))
	case "timemap":
		return base + "/timemap/link?url=" + esc, ""
	case "memdiff":
		// Two random instants, ordered; the server negotiates each to
		// its nearest memento. With no range known, clamp from the epoch
		// to the latest.
		if p.First.IsZero() {
			return base + "/memento/diff?url=" + esc + "&from=19700101000000", ""
		}
		t1, t2 := p.randInstant(rng), p.randInstant(rng)
		if t2.Before(t1) {
			t1, t2 = t2, t1
		}
		return base + "/memento/diff?url=" + esc +
			"&from=" + memento.FormatTimestamp(t1) +
			"&to=" + memento.FormatTimestamp(t2), ""
	default:
		r1 := p.Revs[0]
		if diffPair == "latest" && len(p.Revs) > 1 {
			r1 = p.Revs[len(p.Revs)-2]
		}
		return base + "/diff?url=" + esc + "&r1=" + r1 + "&r2=" + p.Revs[len(p.Revs)-1], ""
	}
}

// sample is one completed request.
type sample struct {
	endpoint  string
	latencyMs float64
	err       bool
}

// runLoad drives the closed loop: conc workers, each with its own seeded
// RNG, issuing requests back-to-back until the deadline.
func runLoad(base string, pages []page, mix []weighted, diffPair string, conc int, dur time.Duration, seed int64) Report {
	if conc < 1 {
		conc = 1
	}
	transport := &http.Transport{
		MaxIdleConns:        conc * 2,
		MaxIdleConnsPerHost: conc * 2,
	}
	client := &http.Client{Timeout: 30 * time.Second, Transport: transport}
	var mu sync.Mutex
	var samples []sample
	start := time.Now()
	deadline := start.Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			var local []sample
			for time.Now().Before(deadline) {
				endpoint := pickEndpoint(mix, rng)
				u, adt := requestURL(base, endpoint, diffPair, pages[rng.Intn(len(pages))], rng)
				req, rerr := http.NewRequest("GET", u, nil)
				if rerr != nil {
					local = append(local, sample{endpoint, 0, true})
					continue
				}
				if adt != "" {
					req.Header.Set("Accept-Datetime", adt)
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				ms := float64(time.Since(t0)) / float64(time.Millisecond)
				bad := err != nil
				if resp != nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					bad = bad || resp.StatusCode >= 400
				}
				local = append(local, sample{endpoint, ms, bad})
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	report := Report{
		Concurrency: conc,
		DurationSec: round3(elapsed),
		Endpoints:   map[string]EndpointStats{},
	}
	byEndpoint := map[string][]float64{}
	errs := map[string]int{}
	for _, s := range samples {
		report.Requests++
		if s.err {
			report.Errors++
			errs[s.endpoint]++
		}
		byEndpoint[s.endpoint] = append(byEndpoint[s.endpoint], s.latencyMs)
	}
	if elapsed > 0 {
		report.RPS = round3(float64(report.Requests) / elapsed)
	}
	for name, lat := range byEndpoint {
		sort.Float64s(lat)
		st := EndpointStats{
			Requests: len(lat),
			Errors:   errs[name],
			P50Ms:    round3(percentile(lat, 0.50)),
			P95Ms:    round3(percentile(lat, 0.95)),
			P99Ms:    round3(percentile(lat, 0.99)),
		}
		if elapsed > 0 {
			st.RPS = round3(float64(len(lat)) / elapsed)
		}
		report.Endpoints[name] = st
	}
	return report
}

// percentile is the exact sample percentile over a sorted slice, with
// linear interpolation between adjacent order statistics (the ApacheBench
// convention). q in (0,1].
func percentile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 || q <= 0 || q > 1 {
		return math.NaN()
	}
	rank := q * float64(n-1)
	lo := int(math.Floor(rank))
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := rank - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

func round3(f float64) float64 { return math.Round(f*1000) / 1000 }

// gateReport compares each baseline endpoint's p99 against the run and
// fails on a geomean slowdown beyond maxRatio, mirroring benchgate.
func gateReport(cur Report, baselinePath string, maxRatio float64) (string, error) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return "", err
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return "", fmt.Errorf("%s: %v", baselinePath, err)
	}
	if len(base.Endpoints) == 0 {
		return "", fmt.Errorf("%s: no endpoints", baselinePath)
	}
	names := make([]string, 0, len(base.Endpoints))
	for name := range base.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	logSum, compared := 0.0, 0
	for _, name := range names {
		b := base.Endpoints[name]
		c, ok := cur.Endpoints[name]
		if !ok || c.Requests == 0 {
			return sb.String(), fmt.Errorf("baseline endpoint %q missing from run", name)
		}
		if b.P99Ms <= 0 || c.P99Ms <= 0 {
			continue
		}
		ratio := c.P99Ms / b.P99Ms
		logSum += math.Log(ratio)
		compared++
		fmt.Fprintf(&sb, "%-10s p99 %10.3fms -> %10.3fms  (x%.3f)\n", name, b.P99Ms, c.P99Ms, ratio)
	}
	if compared == 0 {
		return sb.String(), fmt.Errorf("nothing to compare")
	}
	geomean := math.Exp(logSum / float64(compared))
	fmt.Fprintf(&sb, "geomean p99 ratio: x%.3f (limit x%.3f)\n", geomean, maxRatio)
	if geomean > maxRatio {
		return sb.String(), fmt.Errorf("geomean p99 slowdown x%.3f exceeds limit x%.3f", geomean, maxRatio)
	}
	return sb.String(), nil
}

// diffCacheCounters is the /metrics view of the server's rendered-diff
// cache, scraped before and after the measured window so the reported
// hit rate covers only this run's traffic.
type diffCacheCounters struct {
	Hits, Misses    float64
	PrewarmComputed float64
}

// scrapeDiffCache reads the diff-cache counters from /metrics.
func scrapeDiffCache(base string) (diffCacheCounters, error) {
	var c diffCacheCounters
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return c, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return c, err
	}
	for _, line := range strings.Split(string(body), "\n") {
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		v, perr := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if perr != nil {
			continue
		}
		switch name {
		case "snapshot_diffcache_hits_total":
			c.Hits = v
		case "snapshot_diffcache_misses_total":
			c.Misses = v
		case "diffcache_prewarm_computed_total":
			c.PrewarmComputed = v
		}
	}
	return c, nil
}

// checkHistograms fetches /metrics and verifies every mix endpoint has a
// nonzero request-duration histogram — proof the RED middleware observed
// the run.
func checkHistograms(base string, mix []weighted) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	counts := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "http_request_duration_count{") {
			continue
		}
		brace := strings.Index(line, "} ")
		if brace < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[brace+2:], 64)
		if err != nil {
			continue
		}
		counts[line[len("http_request_duration_count"):brace+1]] = v
	}
	for _, m := range mix {
		label := endpointLabels[m.name]
		if label == "" {
			label = "/" + m.name
		}
		series := fmt.Sprintf(`{endpoint=%q}`, label)
		if counts[series] <= 0 {
			return fmt.Errorf("/metrics has no duration histogram for %s (found %v)", series, counts)
		}
	}
	return nil
}
