package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunIdenticalExitsZero(t *testing.T) {
	dir := t.TempDir()
	a := writeFile(t, dir, "a.html", "<P>same content here.</P>")
	b := writeFile(t, dir, "b.html", "<P>same content here.</P>")
	var out, errb bytes.Buffer
	if code := run([]string{a, b}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "No differences found") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunDifferentExitsOne(t *testing.T) {
	dir := t.TempDir()
	a := writeFile(t, dir, "a.html", "<P>old content sentence.</P>")
	b := writeFile(t, dir, "b.html", "<P>new content sentence.</P>")
	var out, errb bytes.Buffer
	if code := run([]string{"-stats", a, b}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out.String(), "<STRONG><I>new") {
		t.Errorf("merged output missing emphasis:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "change fraction") {
		t.Errorf("stats missing:\n%s", errb.String())
	}
}

func TestRunModes(t *testing.T) {
	dir := t.TempDir()
	a := writeFile(t, dir, "a.html", "<P>shared text. removed sentence.</P>")
	b := writeFile(t, dir, "b.html", "<P>shared text.</P>")
	var out, errb bytes.Buffer
	if code := run([]string{"-mode", "only-new", a, b}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d", code)
	}
	if strings.Contains(out.String(), "removed sentence") {
		t.Errorf("only-new mode showed deleted text:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-mode", "bogus", a, b}, &out, &errb); code != 2 {
		t.Fatalf("bogus mode exit = %d", code)
	}
}

func TestRunUsageAndMissingFiles(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"onlyone.html"}, &out, &errb); code != 2 {
		t.Fatalf("usage exit = %d", code)
	}
	if code := run([]string{"/no/such/a", "/no/such/b"}, &out, &errb); code != 2 {
		t.Fatalf("missing file exit = %d", code)
	}
}
