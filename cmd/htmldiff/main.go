// Command htmldiff compares two HTML files and writes a merged page
// showing the differences with AIDE's markup (struck-out deletions,
// emphasised insertions, chained arrows), as described in §5 of
// "Tracking and Viewing Changes on the Web" (USENIX 1996).
//
// Usage:
//
//	htmldiff [-mode merged|only-diffs|only-new] [-reverse]
//	         [-max-change 0.8] [-title text] [-stats] old.html new.html
//
// The merged page is written to standard output. Like diff, the exit
// status is 0 when the inputs match, 1 when they differ, 2 on error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"aide/internal/htmldiff"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("htmldiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mode := fs.String("mode", "merged", "presentation: merged, only-diffs, or only-new")
	reverse := fs.Bool("reverse", false, "swap the sense of old and new")
	maxChange := fs.Float64("max-change", 0, "suppress the merged view above this change fraction (0 disables)")
	title := fs.String("title", "", "title for the banner")
	coalesce := fs.Int("coalesce", 0, "merge difference regions separated by at most this many common tokens (0 disables)")
	stats := fs.Bool("stats", false, "print comparison statistics to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: htmldiff [flags] old.html new.html")
		fs.PrintDefaults()
		return 2
	}
	oldData, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "htmldiff:", err)
		return 2
	}
	newData, err := os.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "htmldiff:", err)
		return 2
	}

	opt := htmldiff.Options{
		Reverse:           *reverse,
		MaxChangeFraction: *maxChange,
		CoalesceWithin:    *coalesce,
		Title:             *title,
	}
	switch *mode {
	case "merged":
		opt.Mode = htmldiff.Merged
	case "only-diffs":
		opt.Mode = htmldiff.OnlyDifferences
	case "only-new":
		opt.Mode = htmldiff.OnlyNew
	default:
		fmt.Fprintf(stderr, "htmldiff: unknown mode %q\n", *mode)
		return 2
	}

	r := htmldiff.Diff(string(oldData), string(newData), opt)
	fmt.Fprint(stdout, r.HTML)
	if *stats {
		fmt.Fprintf(stderr,
			"tokens: %d old, %d new; %d common, %d modified, %d deleted, %d inserted; change fraction %.2f\n",
			r.Stats.OldTokens, r.Stats.NewTokens, r.Stats.Common, r.Stats.Modified,
			r.Stats.Deleted, r.Stats.Inserted, r.Stats.ChangeFraction)
	}
	if r.Stats.Changed() {
		return 1 // like diff: nonzero when differences exist
	}
	return 0
}
