// Command benchgate parses `go test -bench` output and gates benchmark
// regressions against a committed JSON baseline.
//
// Gate mode (the CI default) compares the run against -baseline and exits
// nonzero when the geometric-mean slowdown across the baseline's
// benchmarks exceeds -max-ratio, or when a baseline benchmark is missing
// from the run:
//
//	go test -bench ... | benchgate -baseline BENCH_baseline.json
//
// Emit mode writes a new baseline from the run instead of gating:
//
//	go test -bench ... | benchgate -emit BENCH_baseline.json
//
// When -emit is combined with -baseline, the emitted file also records
// each benchmark's baseline time and the speedup relative to it, which is
// how before/after comparison artifacts are produced.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the JSON schema shared by baselines and comparison
// artifacts.
type Baseline struct {
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Entry holds one benchmark's timing. The Before/Speedup fields are
// populated only in comparison artifacts (emit mode with a baseline).
type Entry struct {
	NsPerOp       float64 `json:"ns_per_op"`
	BeforeNsPerOp float64 `json:"before_ns_per_op,omitempty"`
	Speedup       float64 `json:"speedup,omitempty"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "baseline JSON to gate against (or compare against with -emit)")
		inputPath    = flag.String("input", "", "benchmark output to read (default stdin)")
		emitPath     = flag.String("emit", "", "write a baseline JSON from the run instead of gating")
		maxRatio     = flag.Float64("max-ratio", 1.25, "maximum allowed geomean slowdown (new/old)")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *inputPath != "" {
		f, err := os.Open(*inputPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	current, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(current) == 0 {
		fatal(fmt.Errorf("no benchmark results in input"))
	}

	var base *Baseline
	if *baselinePath != "" {
		base, err = loadBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
	}

	if *emitPath != "" {
		out := Baseline{Benchmarks: map[string]Entry{}}
		for name, ns := range current {
			e := Entry{NsPerOp: ns}
			if base != nil {
				if b, ok := base.Benchmarks[name]; ok && ns > 0 {
					e.BeforeNsPerOp = b.NsPerOp
					e.Speedup = round3(b.NsPerOp / ns)
				}
			}
			out.Benchmarks[name] = e
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*emitPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *emitPath, len(out.Benchmarks))
		return
	}

	if base == nil {
		fatal(fmt.Errorf("gate mode needs -baseline (or use -emit)"))
	}
	report, err := gate(base, current, *maxRatio)
	fmt.Print(report)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
	os.Exit(1)
}

func round3(f float64) float64 { return math.Round(f*1000) / 1000 }

// parseBench extracts ns/op per benchmark from `go test -bench` output,
// keeping the minimum over repeated runs (-count) as the least-noisy
// estimate. Benchmark names are normalised by stripping the "Benchmark"
// prefix and the "-N" GOMAXPROCS suffix.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		ns := -1.0
		for i := 2; i < len(fields); i++ {
			if fields[i] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
				}
				ns = v
				break
			}
		}
		if ns < 0 {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if prev, ok := out[name]; !ok || ns < prev {
			out[name] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func loadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &b, nil
}

// gate compares current timings against the baseline. It returns a
// human-readable report and an error when a baseline benchmark is missing
// from the run or the geometric-mean ratio (new/old) exceeds maxRatio.
func gate(base *Baseline, current map[string]float64, maxRatio float64) (string, error) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var sb strings.Builder
	var missing []string
	logSum := 0.0
	compared := 0
	for _, name := range names {
		ns, ok := current[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		baseNs := base.Benchmarks[name].NsPerOp
		ratio := ns / baseNs
		logSum += math.Log(ratio)
		compared++
		fmt.Fprintf(&sb, "%-32s %12.0f -> %12.0f ns/op  (x%.3f)\n", name, baseNs, ns, ratio)
	}
	if len(missing) > 0 {
		return sb.String(), fmt.Errorf("baseline benchmarks missing from run: %s", strings.Join(missing, ", "))
	}
	if compared == 0 {
		return sb.String(), fmt.Errorf("nothing to compare")
	}
	geomean := math.Exp(logSum / float64(compared))
	fmt.Fprintf(&sb, "geomean ratio: x%.3f (limit x%.3f)\n", geomean, maxRatio)
	if geomean > maxRatio {
		return sb.String(), fmt.Errorf("geomean slowdown x%.3f exceeds limit x%.3f", geomean, maxRatio)
	}
	return sb.String(), nil
}
