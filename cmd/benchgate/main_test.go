package main

import (
	"math"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: aide
cpu: whatever
BenchmarkFig2HtmlDiff   	    2392	    100872 ns/op	  17.80 MB/s	  112341 B/op	     430 allocs/op
BenchmarkFig2HtmlDiff   	    2306	    113933 ns/op	  15.76 MB/s	  112342 B/op	     430 allocs/op
BenchmarkHtmlDiffBySize/1KB-8     	    2270	     93950 ns/op	  13.16 MB/s
BenchmarkArchiveDeepCheckout 	   11270	     29303 ns/op	   45264 B/op	      56 allocs/op
PASS
ok  	aide	3.536s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"Fig2HtmlDiff":        100872, // min of the two runs
		"HtmlDiffBySize/1KB":  93950,  // -8 GOMAXPROCS suffix stripped
		"ArchiveDeepCheckout": 29303,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v, want %v", name, got[name], ns)
		}
	}
}

func baseline(ns map[string]float64) *Baseline {
	b := &Baseline{Benchmarks: map[string]Entry{}}
	for name, v := range ns {
		b.Benchmarks[name] = Entry{NsPerOp: v}
	}
	return b
}

func TestGatePassesWithinLimit(t *testing.T) {
	base := baseline(map[string]float64{"A": 100, "B": 200})
	current := map[string]float64{"A": 110, "B": 230} // x1.10, x1.15
	report, err := gate(base, current, 1.25)
	if err != nil {
		t.Fatalf("gate failed within limit: %v\n%s", err, report)
	}
	if !strings.Contains(report, "geomean ratio") {
		t.Errorf("report missing geomean line:\n%s", report)
	}
}

// TestGateFailsOnInjectedSlowdown is the acceptance check for the CI
// gate: a 2x across-the-board slowdown must fail at the 1.25 limit.
func TestGateFailsOnInjectedSlowdown(t *testing.T) {
	base := baseline(map[string]float64{"A": 100, "B": 200, "C": 50000})
	current := map[string]float64{"A": 200, "B": 400, "C": 100000}
	report, err := gate(base, current, 1.25)
	if err == nil {
		t.Fatalf("gate passed a 2x slowdown:\n%s", report)
	}
	if !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("unexpected gate error: %v", err)
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	base := baseline(map[string]float64{"A": 100, "Gone": 100})
	current := map[string]float64{"A": 100}
	if _, err := gate(base, current, 1.25); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("gate did not flag missing benchmark, err = %v", err)
	}
}

func TestGateGeomeanToleratesOneOutlier(t *testing.T) {
	// One noisy x1.6 among four steady x1.0 runs: geomean ~1.125, under
	// the 1.25 limit — the gate keys on the aggregate, not the max.
	base := baseline(map[string]float64{"A": 100, "B": 100, "C": 100, "D": 100})
	current := map[string]float64{"A": 100, "B": 100, "C": 100, "D": 160}
	report, err := gate(base, current, 1.25)
	if err != nil {
		t.Fatalf("gate failed on a single outlier: %v\n%s", err, report)
	}
	geo := math.Exp(math.Log(1.6) / 4)
	if want := "x1.125"; math.Abs(geo-1.1247) > 0.001 || !strings.Contains(report, want) {
		t.Errorf("report should show geomean %s:\n%s", want, report)
	}
}
