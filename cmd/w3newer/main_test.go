package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aide/internal/simclock"
	"aide/internal/websim"
)

// cliRig stands up a synthetic web over real HTTP and writes the CLI's
// input files (hotlist, history, config) into a temp dir.
type cliRig struct {
	dir      string
	web      *websim.Web
	srv      *httptest.Server
	hotlist  string
	history  string
	config   string
	statePth string
}

func newCLIRig(t *testing.T) *cliRig {
	t.Helper()
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	srv := httptest.NewServer(web.Handler())
	t.Cleanup(srv.Close)
	dir := t.TempDir()
	return &cliRig{
		dir: dir, web: web, srv: srv,
		hotlist:  filepath.Join(dir, "bookmarks.html"),
		history:  filepath.Join(dir, "history.txt"),
		config:   filepath.Join(dir, "w3newer.cfg"),
		statePth: filepath.Join(dir, "state.json"),
	}
}

// urlFor maps a logical host/path onto the path-prefixed real-HTTP URL.
func (r *cliRig) urlFor(host, path string) string {
	return r.srv.URL + "/" + host + path
}

func (r *cliRig) writeHotlist(t *testing.T, urls map[string]string) {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE NETSCAPE-Bookmark-file-1>\n<TITLE>Bookmarks</TITLE>\n<H1>Bookmarks</H1>\n<DL><p>\n")
	for url, title := range urls {
		fmt.Fprintf(&sb, "    <DT><A HREF=\"%s\">%s</A>\n", url, title)
	}
	sb.WriteString("</DL><p>\n")
	if err := os.WriteFile(r.hotlist, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func (r *cliRig) writeHistory(t *testing.T, visits map[string]time.Time) {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("ncsa-mosaic-history-format-1\nDefault\n")
	for url, ts := range visits {
		fmt.Fprintf(&sb, "%s %s\n", url, ts.UTC().Format(time.ANSIC))
	}
	if err := os.WriteFile(r.history, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCLIEndToEnd(t *testing.T) {
	r := newCLIRig(t)
	// Two pages: one changed since the visit, one not.
	changed := r.web.Site("news.example").Page("/daily.html")
	changed.Set("<P>old news.</P>")
	stable := r.web.Site("docs.example").Page("/manual.html")
	stable.Set("<P>manual.</P>")

	visitTime := r.web.Clock().Now().Add(time.Hour)
	r.web.Advance(48 * time.Hour)
	changed.Set("<P>fresh news!</P>") // modified after the visit

	changedURL := r.urlFor("news.example", "/daily.html")
	stableURL := r.urlFor("docs.example", "/manual.html")
	r.writeHotlist(t, map[string]string{
		changedURL: "Daily News",
		stableURL:  "The Manual",
	})
	r.writeHistory(t, map[string]time.Time{
		changedURL: visitTime,
		stableURL:  visitTime,
	})
	if err := os.WriteFile(r.config, []byte("Default 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	code := run(context.Background(), []string{
		"-hotlist", r.hotlist,
		"-history", r.history,
		"-config", r.config,
		"-state", r.statePth,
		"-snapshot", "http://aide.example/snap",
		"-user", "fred@att.com",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	report := out.String()
	if !strings.Contains(report, "1 of 2 pages have changed") {
		t.Errorf("summary wrong:\n%s", report)
	}
	if !strings.Contains(report, "Daily News") || !strings.Contains(report, "The Manual") {
		t.Errorf("titles missing:\n%s", report)
	}
	if !strings.Contains(report, "/snap/remember?") {
		t.Errorf("snapshot links missing:\n%s", report)
	}
	// State was persisted for the next run.
	if _, err := os.Stat(r.statePth); err != nil {
		t.Errorf("state file not written: %v", err)
	}
}

func TestCLIOutputFileAndSummary(t *testing.T) {
	r := newCLIRig(t)
	r.web.Site("h.example").Page("/p").Set("<P>content.</P>")
	r.writeHotlist(t, map[string]string{r.urlFor("h.example", "/p"): "Page"})
	outPath := filepath.Join(r.dir, "report.html")

	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-hotlist", r.hotlist, "-o", outPath}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "What's new") {
		t.Errorf("report file content:\n%s", data)
	}
	if !strings.Contains(errb.String(), "changed") {
		t.Errorf("summary line missing: %s", errb.String())
	}
}

func TestCLIPrioritiesFile(t *testing.T) {
	r := newCLIRig(t)
	r.web.Site("hi.example").Page("/a").Set("<P>a.</P>")
	r.web.Site("lo.example").Page("/b").Set("<P>b.</P>")
	hiURL := r.urlFor("hi.example", "/a")
	loURL := r.urlFor("lo.example", "/b")
	r.writeHotlist(t, map[string]string{loURL: "ZLowPriority", hiURL: "AHighPriority"})
	prioPath := filepath.Join(r.dir, "prio.cfg")
	// Escape regex metacharacters in the URL by matching on substring
	// pattern instead.
	if err := os.WriteFile(prioPath, []byte(".*hi\\.example.* 10\nDefault 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-hotlist", r.hotlist, "-priorities", prioPath}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	report := out.String()
	if !(strings.Index(report, "AHighPriority") < strings.Index(report, "ZLowPriority")) {
		t.Errorf("priority ordering not applied:\n%s", report)
	}
}

func TestCLIMissingInputs(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{}, &out, &errb); code != 2 {
		t.Fatalf("no hotlist exit = %d", code)
	}
	if code := run(context.Background(), []string{"-hotlist", "/no/such/file"}, &out, &errb); code != 1 {
		t.Fatalf("missing hotlist file exit = %d", code)
	}
}

func TestCLIDaemonModePasses(t *testing.T) {
	r := newCLIRig(t)
	r.web.Site("d.example").Page("/p").Set("<P>content.</P>")
	r.writeHotlist(t, map[string]string{r.urlFor("d.example", "/p"): "Page"})
	outPath := filepath.Join(r.dir, "report.html")

	var out, errb bytes.Buffer
	start := time.Now()
	code := run(context.Background(), []string{
		"-hotlist", r.hotlist, "-o", outPath,
		"-every", "10ms", "-passes", "3",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("daemon mode returned too fast: %v", elapsed)
	}
	// Three result summary lines and three metrics lines, one of each
	// per pass.
	if got := strings.Count(errb.String(), "errors ->"); got != 3 {
		t.Errorf("summary lines = %d, want 3:\n%s", got, errb.String())
	}
	if got := strings.Count(errb.String(), "w3newer: metrics:"); got != 3 {
		t.Errorf("metrics lines = %d, want 3:\n%s", got, errb.String())
	}
	// Counters are cumulative across passes.
	if !strings.Contains(errb.String(), "tracker.sweeps=") {
		t.Errorf("metrics line missing tracker.sweeps:\n%s", errb.String())
	}
}

func TestCLIContinuousSchedulerDaemon(t *testing.T) {
	r := newCLIRig(t)
	r.web.Site("s.example").Page("/p").Set("<P>content.</P>")
	r.writeHotlist(t, map[string]string{r.urlFor("s.example", "/p"): "Page"})
	if err := os.WriteFile(r.config, []byte("Default 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(r.dir, "report.html")

	var out, errb bytes.Buffer
	code := run(context.Background(), []string{
		"-hotlist", r.hotlist, "-config", r.config, "-o", outPath,
		"-state", r.statePth,
		"-daemon", "-sched-min", "30ms", "-sched-max", "200ms",
		"-host-rps", "1000", "-passes", "3",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	stderrS := errb.String()
	// One tick line per productive tick, each carrying queue depth and
	// deferred counts; metrics lines include the sched.* registry.
	if got := strings.Count(stderrS, "w3newer: tick "); got != 3 {
		t.Errorf("tick lines = %d, want 3:\n%s", got, stderrS)
	}
	if !strings.Contains(stderrS, "queue=") || !strings.Contains(stderrS, "deferred=") {
		t.Errorf("tick line missing queue/deferred counts:\n%s", stderrS)
	}
	if !strings.Contains(stderrS, "sched.queue_len=") {
		t.Errorf("metrics line missing sched.* entries:\n%s", stderrS)
	}
	if !strings.Contains(stderrS, "scheduler stopped") {
		t.Errorf("missing shutdown line:\n%s", stderrS)
	}
	// Report and both state files were written.
	if data, err := os.ReadFile(outPath); err != nil || !strings.Contains(string(data), "Page") {
		t.Errorf("report file: err=%v content=%q", err, data)
	}
	if _, err := os.Stat(r.statePth); err != nil {
		t.Errorf("tracker state not written: %v", err)
	}
	if _, err := os.Stat(r.statePth + ".sched"); err != nil {
		t.Errorf("scheduler state not written: %v", err)
	}
}
