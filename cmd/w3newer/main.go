// Command w3newer is AIDE's modification tracker (§3), intended to run
// periodically (a crontab entry in the paper): it reads the user's
// hotlist and browser history, checks which pages have changed since the
// user last saw them — skipping checks its thresholds and caches make
// unnecessary — and writes an HTML report with Remember / Diff / History
// links into the snapshot facility.
//
// Usage:
//
//	w3newer -hotlist bookmarks.html [-history history.txt]
//	        [-config w3newer.cfg] [-priorities priorities.cfg]
//	        [-state state.json]
//	        [-snapshot http://host/snapshot] [-user you@example.com]
//	        [-prioritize] [-ignore-robots] [-errors-as-checked]
//	        [-timeout 30s] [-retries 3] [-deadline 0] [-workers 1]
//	        [-breaker-threshold 5] [-breaker-cooldown 5m]
//	        [-every 1h] [-passes N] [-o report.html]
//	        [-debug-addr :6060] [-log-level info]
//
// -debug-addr starts an HTTP listener with /debug/metrics,
// /debug/traces, and net/http/pprof for inspecting a long-running
// daemon; -log-level enables structured logs on stderr
// (debug|info|warn|error). After each pass a metrics summary line is
// printed to stderr.
//
// With -every, w3newer runs as its own periodic daemon instead of
// relying on cron: a pass every interval, regenerating the report each
// time (-passes bounds the count; 0 means forever). An interrupt
// (SIGINT/SIGTERM) cancels the run's context: in-flight checks stop,
// the remaining entries are reported as canceled, state is saved, and
// the pass's partial report is still written.
//
// With -daemon, w3newer abandons lockstep passes entirely: a continuous
// scheduler (internal/sched) gives every hotlist URL its own next-due
// time, adapted to its observed change rate between -sched-min and
// -sched-max (Table 1 thresholds stay as floors), polls hosts politely
// at -host-rps, and defers hosts whose circuit breaker is open. The
// report is regenerated and state saved after every tick that polled
// something; -passes bounds the number of such ticks. Scheduler state
// (rate estimates, next-due times) persists in <state>.sched, and the
// per-tick metrics line includes the sched.* queue and deferral
// counters. -phase-jitter spreads host starts of batch passes (-every
// mode) by a deterministic per-host offset.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"aide/internal/breaker"
	"aide/internal/hotlist"
	"aide/internal/obs"
	"aide/internal/robots"
	"aide/internal/sched"
	"aide/internal/tracker"
	"aide/internal/w3config"
	"aide/internal/webclient"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
// Canceling ctx ends the run early with a partial report.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("w3newer", flag.ContinueOnError)
	fs.SetOutput(stderr)
	hotlistPath := fs.String("hotlist", "", "hotlist file (Netscape bookmarks or Mosaic hotlist)")
	historyPath := fs.String("history", "", "browser global-history file (NCSA format)")
	configPath := fs.String("config", "", "threshold configuration (Table 1 format); built-in defaults when absent")
	prioritiesPath := fs.String("priorities", "", "Tapestry-style priority file (pattern weight per line)")
	statePath := fs.String("state", "", "persistent state cache (JSON); enables cross-run skip logic")
	snapshotBase := fs.String("snapshot", "", "base URL of the snapshot facility for report links")
	user := fs.String("user", "", "identity passed to the snapshot facility")
	out := fs.String("o", "", "report output file (default stdout)")
	prioritize := fs.Bool("prioritize", false, "sort the report by priority instead of hotlist order")
	ignoreRobots := fs.Bool("ignore-robots", false, "bypass the robot exclusion protocol")
	errorsAsChecked := fs.Bool("errors-as-checked", false, "count failed checks against the polling threshold")
	skipBadHosts := fs.Bool("skip-bad-hosts", true, "skip a host's remaining URLs after a transport error")
	every := fs.Duration("every", 0, "repeat the pass on this interval (0 = single pass)")
	passes := fs.Int("passes", 0, "with -every or -daemon, stop after this many passes (0 = forever)")
	daemon := fs.Bool("daemon", false, "run the continuous adaptive scheduler instead of lockstep passes")
	schedMin := fs.Duration("sched-min", 15*time.Minute, "with -daemon, shortest adapted poll interval")
	schedMax := fs.Duration("sched-max", 7*24*time.Hour, "with -daemon, longest adapted poll interval")
	hostRPS := fs.Float64("host-rps", 1.0, "with -daemon, per-host politeness limit in requests/second")
	phaseJitter := fs.Duration("phase-jitter", 0, "spread each host's first request in a concurrent pass by a deterministic offset in [0, this)")
	jitterSeed := fs.Int64("jitter-seed", 0, "seed for deterministic jitter (phase offsets and scheduler spread)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout (each retry attempt; 0 = none)")
	retries := fs.Int("retries", 3, "attempts per request for transient failures")
	workers := fs.Int("workers", 1, "hosts checked in parallel per pass (<=1 = serial; one host's URLs stay serial)")
	breakerThreshold := fs.Int("breaker-threshold", 5, "consecutive host failures before the circuit breaker opens (0 disables breakers)")
	breakerCooldown := fs.Duration("breaker-cooldown", 5*time.Minute, "how long an open breaker rejects a host before probing again")
	deadline := fs.Duration("deadline", 0, "overall deadline per pass; a pass cut short reports the rest as canceled (0 = none)")
	debugAddr := fs.String("debug-addr", "", "optional HTTP listener with /debug/metrics, /debug/traces, and net/http/pprof")
	logLevel := fs.String("log-level", "", "enable structured logs on stderr at this level (debug|info|warn|error)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *hotlistPath == "" {
		fmt.Fprintln(stderr, "w3newer: -hotlist is required")
		fs.PrintDefaults()
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "w3newer:", err)
		return 1
	}

	if *logLevel != "" {
		if err := obs.EnableLogging(stderr, *logLevel); err != nil {
			return fail(err)
		}
	}
	// Per-process span-id seed, so traces that cross into another daemon
	// (traceparent propagation) merge without id collisions.
	obs.DefaultTracer.Seed = obs.SeedFromPID()
	// The mux reference is kept so daemon mode can mount /debug/sched
	// once the scheduler exists (ServeMux registration is safe after
	// the listener starts).
	var debugMux *http.ServeMux
	if *debugAddr != "" {
		debugMux = obs.DebugMux()
		go func() {
			if err := http.ListenAndServe(*debugAddr, debugMux); err != nil {
				fmt.Fprintln(stderr, "w3newer: debug listener:", err)
			}
		}()
	}

	entries, err := loadHotlist(*hotlistPath)
	if err != nil {
		return fail(err)
	}
	hist, err := loadHistory(*historyPath, entries)
	if err != nil {
		return fail(err)
	}
	cfg, err := loadConfig(*configPath)
	if err != nil {
		return fail(err)
	}

	client := webclient.New(&webclient.HTTPTransport{})
	client.Timeout = *timeout
	client.Retry = webclient.DefaultRetryPolicy()
	client.Retry.MaxAttempts = *retries
	if *breakerThreshold > 0 {
		client.Breakers = breaker.NewSet(breaker.Config{
			FailureThreshold: *breakerThreshold,
			Cooldown:         *breakerCooldown,
		})
	}
	tr := tracker.New(client, cfg, hist, nil)
	tr.Opt.TreatErrorsAsChecked = *errorsAsChecked
	tr.Opt.SkipHostAfterError = *skipBadHosts
	tr.Opt.IgnoreRobots = *ignoreRobots
	tr.Opt.Concurrency = *workers
	tr.Opt.PhaseJitter = *phaseJitter
	tr.Opt.JitterSeed = *jitterSeed
	// robots.txt failures fail open, so one attempt is enough; retrying
	// with backoff would stall every pass on hosts that are down.
	robotsClient := webclient.New(&webclient.HTTPTransport{})
	robotsClient.Timeout = *timeout
	tr.Robots = robots.NewCache(func(ctx context.Context, url string) (int, string, error) {
		info, err := robotsClient.Get(ctx, url)
		return info.Status, info.Body, err
	}, nil)

	if *statePath != "" {
		if err := tr.LoadState(*statePath); err != nil {
			fmt.Fprintln(stderr, "w3newer: warning:", err)
		}
	}

	opts := tracker.ReportOptions{
		SnapshotBase: *snapshotBase,
		User:         *user,
		Prioritize:   *prioritize,
	}
	if *prioritiesPath != "" {
		f, err := os.Open(*prioritiesPath)
		if err != nil {
			return fail(err)
		}
		prio, perr := tracker.ParsePriorities(f)
		f.Close()
		if perr != nil {
			return fail(perr)
		}
		opts.Prioritize = true
		opts.Score = prio.Score
	}

	if *daemon {
		return runDaemon(ctx, daemonParams{
			tr: tr, hist: hist, entries: entries, cfg: cfg, client: client,
			opts: opts, statePath: *statePath, out: *out, passes: *passes,
			min: *schedMin, max: *schedMax, rps: *hostRPS, workers: *workers,
			seed: *jitterSeed, breakerCooldown: *breakerCooldown,
			debugMux: debugMux, stdout: stdout, stderr: stderr,
		})
	}

	// onePass runs a check cycle and emits the report.
	onePass := func() int {
		passCtx, cancel := ctx, context.CancelFunc(func() {})
		if *deadline > 0 {
			passCtx, cancel = context.WithTimeout(ctx, *deadline)
		}
		results := tr.Run(passCtx, entries)
		cancel()
		if *statePath != "" {
			if err := tr.SaveState(*statePath); err != nil {
				fmt.Fprintln(stderr, "w3newer: warning: saving state:", err)
			}
		}
		opts.Now = time.Now()
		report := tracker.Report(results, opts)
		// Cumulative counters across passes; the sweep summary (§3's
		// per-run accounting) goes to stderr so the report stays clean.
		fmt.Fprintf(stderr, "w3newer: metrics: %s\n",
			obs.Default.SummaryLine("tracker.", "webclient.", "breaker.", "robots.", "proxycache."))
		if *out == "" {
			fmt.Fprint(stdout, report)
			return 0
		}
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			return fail(err)
		}
		sum := tracker.Summary(results)
		fmt.Fprintf(stderr, "w3newer: %d changed, %d unchanged, %d not checked, %d errors -> %s\n",
			sum[tracker.Changed], sum[tracker.Unchanged],
			sum[tracker.NotChecked]+sum[tracker.Excluded], sum[tracker.Failed], *out)
		return 0
	}

	if *every <= 0 {
		return onePass()
	}
	// Daemon mode: the paper ran w3newer from cron; -every builds the
	// periodic behaviour in. The inter-pass sleep is interruptible so a
	// signal stops the daemon promptly.
	for pass := 1; ; pass++ {
		if code := onePass(); code != 0 {
			return code
		}
		if *passes > 0 && pass >= *passes {
			return 0
		}
		select {
		case <-time.After(*every):
		case <-ctx.Done():
			fmt.Fprintln(stderr, "w3newer: interrupted; exiting")
			return 0
		}
	}
}

// daemonParams carries run()'s wiring into the scheduler daemon.
type daemonParams struct {
	tr              *tracker.Tracker
	hist            *hotlist.History
	entries         []hotlist.Entry
	cfg             *w3config.Config
	client          *webclient.Client
	opts            tracker.ReportOptions
	statePath, out  string
	passes          int
	min, max        time.Duration
	rps             float64
	workers         int
	seed            int64
	breakerCooldown time.Duration
	debugMux        *http.ServeMux
	stdout, stderr  io.Writer
}

// runDaemon drives the hotlist through the continuous scheduler until
// ctx ends or -passes productive ticks have run. Each productive tick
// (one that polled at least one URL) regenerates the report, saves
// tracker and scheduler state, and prints the metrics summary —
// the moral equivalent of one batch pass, at adaptive cadence.
func runDaemon(ctx context.Context, p daemonParams) int {
	sc := sched.New(sched.Config{
		MinInterval: p.min, MaxInterval: p.max, HostRPS: p.rps,
		Workers: p.workers, Seed: p.seed, BreakerDefer: p.breakerCooldown,
	})
	sc.Breakers = p.client.Breakers
	sc.Floor = func(u string) (time.Duration, bool) {
		th := p.cfg.ThresholdFor(u)
		return th.Every, th.Never
	}
	entryByURL := make(map[string]hotlist.Entry, len(p.entries))
	results := make(map[string]tracker.Result, len(p.entries))
	var resultsMu sync.Mutex
	sc.Poll = func(ctx context.Context, url string) sched.Outcome {
		e, ok := entryByURL[url]
		if !ok {
			e = hotlist.Entry{URL: url, Title: url}
		}
		r := p.tr.CheckEntry(ctx, e)
		resultsMu.Lock()
		results[url] = r
		resultsMu.Unlock()
		switch r.Status {
		case tracker.Changed:
			// Mark the page seen: the estimator measures changes per
			// interval, so the next poll must ask "changed again?"
			// rather than "still newer than the user's last visit?".
			p.hist.Visit(url, time.Now())
			return sched.Changed
		case tracker.Unchanged:
			return sched.Unchanged
		case tracker.Failed:
			return sched.Failed
		default: // NotChecked, Excluded
			return sched.Skipped
		}
	}

	schedStatePath := ""
	if p.statePath != "" {
		schedStatePath = p.statePath + ".sched"
		if err := sc.LoadState(schedStatePath); err != nil {
			fmt.Fprintln(p.stderr, "w3newer: warning:", err)
		}
	}
	for _, e := range p.entries {
		if _, dup := entryByURL[e.URL]; dup {
			continue
		}
		entryByURL[e.URL] = e
		sc.Add(e.URL)
	}
	if p.debugMux != nil {
		p.debugMux.Handle("/debug/sched", sc.DebugHandler())
	}
	fmt.Fprintf(p.stderr, "w3newer: daemon: scheduling %d URLs (min %v, max %v, %.3g req/s per host)\n",
		sc.Len(), p.min, p.max, p.rps)

	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	productive := 0
	sc.OnTick = func(st sched.TickStats) {
		if st.Polled == 0 && st.DeferredBreaker == 0 && st.DeferredPoliteness == 0 {
			return
		}
		productive++
		resultsMu.Lock()
		rs := make([]tracker.Result, 0, len(results))
		for _, e := range p.entries {
			if r, ok := results[e.URL]; ok {
				r.Entry = e
				rs = append(rs, r)
			}
		}
		resultsMu.Unlock()
		p.opts.Now = time.Now()
		report := tracker.Report(rs, p.opts)
		if p.out == "" {
			fmt.Fprint(p.stdout, report)
		} else if err := os.WriteFile(p.out, []byte(report), 0o644); err != nil {
			fmt.Fprintln(p.stderr, "w3newer: warning: writing report:", err)
		}
		if p.statePath != "" {
			if err := p.tr.SaveState(p.statePath); err != nil {
				fmt.Fprintln(p.stderr, "w3newer: warning: saving state:", err)
			}
			if err := sc.SaveState(schedStatePath); err != nil {
				fmt.Fprintln(p.stderr, "w3newer: warning: saving scheduler state:", err)
			}
		}
		fmt.Fprintf(p.stderr, "w3newer: tick %d: due=%d polled=%d changed=%d deferred=%d queue=%d\n",
			productive, st.Due, st.Polled, st.Changed,
			st.DeferredBreaker+st.DeferredPoliteness, st.Queue)
		fmt.Fprintf(p.stderr, "w3newer: metrics: %s\n",
			obs.Default.SummaryLine("sched.", "tracker.", "webclient.", "breaker.", "robots.", "proxycache."))
		if p.passes > 0 && productive >= p.passes {
			cancel()
		}
	}
	if err := sc.Run(dctx); err != nil && err != context.Canceled {
		fmt.Fprintln(p.stderr, "w3newer:", err)
		return 1
	}
	fmt.Fprintln(p.stderr, "w3newer: scheduler stopped")
	return 0
}

func loadHotlist(path string) ([]hotlist.Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return hotlist.Parse(f)
}

// loadHistory reads the browser history; bookmark-embedded LAST_VISIT
// times supplement it (Netscape keeps them in the bookmark file).
func loadHistory(path string, entries []hotlist.Entry) (*hotlist.History, error) {
	hist := hotlist.NewHistory()
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		hist, err = hotlist.ParseHistory(f)
		if err != nil {
			return nil, err
		}
	}
	for _, e := range entries {
		if !e.LastVisit.IsZero() {
			hist.Visit(e.URL, e.LastVisit)
		}
	}
	return hist, nil
}

func loadConfig(path string) (*w3config.Config, error) {
	if path == "" {
		return w3config.ParseString("Default 1d\nfile:.* 0\n")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return w3config.Parse(f)
}
