package bench

// Scheduler soak: the continuous adaptive scheduler (internal/sched)
// driven over a simulated web for two days must (a) converge
// fast-changing pages to the minimum interval and stagnant ones toward
// the maximum, (b) spend strictly fewer fetches than the equivalent
// lockstep batch sweep at the fast rate, (c) exercise the politeness
// and breaker deferral paths under chaos, and (d) be bit-for-bit
// deterministic across two same-seed runs. Run with -race in CI (the
// chaos job).

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"aide/internal/aide"
	"aide/internal/breaker"
	"aide/internal/hotlist"
	"aide/internal/obs"
	"aide/internal/sched"
	"aide/internal/simclock"
	"aide/internal/snapshot"
	"aide/internal/tracker"
	"aide/internal/webclient"
	"aide/internal/websim"
)

const (
	soakMin   = 10 * time.Minute
	soakMax   = 8 * time.Hour
	soakTicks = 2 * 24 * 6 // two simulated days at 10-minute ticks
)

// soakWeb builds the fixed chaos topology: three fast pages sharing one
// host (so politeness bites when they come due together), one stagnant
// page, and a fast page on a host that goes dark for an hour out of
// every four (so its breaker trips and the scheduler must defer it).
func soakWeb(clock *simclock.Sim, reg *obs.Registry) (*websim.Web, []hotlist.Entry) {
	web := websim.New(clock)
	web.Metrics = reg
	var entries []hotlist.Entry
	fastSite := web.Site("fast.example")
	for i := 0; i < 3; i++ {
		p := fastSite.Page(fmt.Sprintf("/news%d", i))
		p.Set("v0\n")
		web.Evolve(p, soakMin, websim.AppendGenerator("item", int64(i+1)))
		entries = append(entries, hotlist.Entry{URL: p.URL(), Title: p.URL()})
	}
	still := web.Site("still.example").Page("/doc")
	still.Set("static\n")
	entries = append(entries, hotlist.Entry{URL: still.URL(), Title: "still"})
	flaky := web.Site("flaky.example")
	fp := flaky.Page("/feed")
	fp.Set("f0\n")
	web.Evolve(fp, soakMin, websim.AppendGenerator("feed", 9))
	flaky.SetFaults(websim.FaultProfile{FlapPeriod: 4 * time.Hour, FlapDown: time.Hour})
	entries = append(entries, hotlist.Entry{URL: fp.URL(), Title: "flaky"})
	return web, entries
}

type soakRun struct {
	fetches   int            // total HEAD+GET requests the web served
	polls     map[string]int // scheduler polls per URL
	intervals map[string]float64
	reg       *obs.Registry
}

func runSchedulerSoak(t *testing.T, seed int64) soakRun {
	t.Helper()
	clock := simclock.New(time.Time{})
	reg := obs.NewRegistry()
	web, entries := soakWeb(clock, reg)

	client := webclient.New(web)
	client.Clock = clock
	client.Metrics = reg
	client.Breakers = breaker.NewSet(breaker.Config{FailureThreshold: 3, Cooldown: 30 * time.Minute})
	client.Breakers.Clock = clock
	client.Breakers.Metrics = reg

	hist := hotlist.NewHistory()
	tr := tracker.New(client, mustCfg(t, "Default 0\n"), hist, clock)
	tr.Metrics = reg

	byURL := map[string]hotlist.Entry{}
	for _, e := range entries {
		byURL[e.URL] = e
	}

	sc := sched.New(sched.Config{
		MinInterval:  soakMin,
		MaxInterval:  soakMax,
		HostRPS:      1,
		HostBurst:    2,
		Seed:         seed,
		BreakerDefer: 15 * time.Minute,
	})
	sc.Clock = clock
	sc.Metrics = reg
	sc.Breakers = client.Breakers

	var pollMu sync.Mutex
	polls := map[string]int{}
	sc.Poll = func(ctx context.Context, url string) sched.Outcome {
		pollMu.Lock()
		polls[url]++
		pollMu.Unlock()
		res := tr.CheckEntry(ctx, byURL[url])
		switch {
		case res.Stale || res.Status == tracker.Failed:
			return sched.Failed
		case res.Status == tracker.Changed:
			// Mark the change seen so the next poll measures
			// change-since-last-poll, which is what the estimator wants.
			hist.Visit(url, clock.Now())
			return sched.Changed
		case res.Status == tracker.Unchanged:
			return sched.Unchanged
		default:
			return sched.Skipped
		}
	}
	for _, e := range entries { // fixed order: Add order feeds heap tie-breaks
		sc.Add(e.URL)
	}

	for i := 0; i < soakTicks; i++ {
		web.Advance(soakMin)
		sc.Tick(context.Background())
	}

	heads, gets := web.TotalRequests()
	intervals := map[string]float64{}
	for _, u := range sc.SnapshotState().URLs {
		intervals[u.URL] = u.IntervalSeconds
	}
	return soakRun{fetches: heads + gets, polls: polls, intervals: intervals, reg: reg}
}

// runBatchSweepBaseline replays the same simulated span with the
// lockstep strategy the scheduler replaces: every URL checked every
// soakMin, because a batch sweep must run at the fastest rate any page
// needs. Returns the total requests the web served.
func runBatchSweepBaseline(t *testing.T) int {
	t.Helper()
	clock := simclock.New(time.Time{})
	reg := obs.NewRegistry()
	web, entries := soakWeb(clock, reg)

	client := webclient.New(web)
	client.Clock = clock
	client.Breakers = breaker.NewSet(breaker.Config{FailureThreshold: 3, Cooldown: 30 * time.Minute})
	client.Breakers.Clock = clock

	hist := hotlist.NewHistory()
	tr := tracker.New(client, mustCfg(t, "Default 0\n"), hist, clock)
	for i := 0; i < soakTicks; i++ {
		web.Advance(soakMin)
		for _, res := range tr.Run(context.Background(), entries) {
			if res.Status == tracker.Changed && !res.Stale {
				hist.Visit(res.Entry.URL, clock.Now())
			}
		}
	}
	heads, gets := web.TotalRequests()
	return heads + gets
}

func TestChaosSchedulerSoak(t *testing.T) {
	checkGoroutineLeaks(t)
	run := runSchedulerSoak(t, 42)

	// Adaptivity: the fast pages converge to the floor, the stagnant one
	// backs off to at least half the ceiling.
	for i := 0; i < 3; i++ {
		url := fmt.Sprintf("http://fast.example/news%d", i)
		iv := run.intervals[url]
		if iv == 0 || iv > (2*soakMin).Seconds() {
			t.Errorf("fast page %s interval = %.0fs, want near %v", url, iv, soakMin)
		}
	}
	if iv := run.intervals["http://still.example/doc"]; iv < (soakMax / 2).Seconds() {
		t.Errorf("stagnant page interval = %.0fs, want >= %v", iv, soakMax/2)
	}
	// And the realized effort follows: each fast page polled many more
	// times than the stagnant one.
	stillPolls := run.polls["http://still.example/doc"]
	for i := 0; i < 3; i++ {
		url := fmt.Sprintf("http://fast.example/news%d", i)
		if run.polls[url] < 3*stillPolls {
			t.Errorf("fast page %s polled %d times vs stagnant %d, want > 3x",
				url, run.polls[url], stillPolls)
		}
	}

	// Economy: strictly fewer fetches than the lockstep sweep over the
	// identical web and span.
	batch := runBatchSweepBaseline(t)
	if run.fetches >= batch {
		t.Errorf("scheduler spent %d fetches, batch sweep %d: adaptive polling should cost strictly less",
			run.fetches, batch)
	} else {
		t.Logf("fetches: scheduler %d vs batch sweep %d", run.fetches, batch)
	}

	// Chaos pressure showed up as deferrals, not busy-polling: the three
	// fast pages share one host (burst 2), and the flaky host's breaker
	// opened during its dark hours.
	if n := run.reg.Counter("sched.deferred.politeness").Value(); n == 0 {
		t.Error("sched.deferred.politeness = 0, want > 0 (3 URLs on one host, burst 2)")
	}
	if n := run.reg.Counter("sched.deferred.breaker").Value(); n == 0 {
		t.Error("sched.deferred.breaker = 0, want > 0 (flaky host trips its breaker)")
	}
	if n := run.reg.Counter("sched.polls.failed").Value(); n == 0 {
		t.Error("sched.polls.failed = 0, want > 0 (flaky host's dark hours)")
	}
}

func TestChaosSchedulerSoakDeterministic(t *testing.T) {
	checkGoroutineLeaks(t)
	a := runSchedulerSoak(t, 7)
	b := runSchedulerSoak(t, 7)
	if a.fetches != b.fetches {
		t.Errorf("same-seed runs fetched %d vs %d", a.fetches, b.fetches)
	}
	if !reflect.DeepEqual(a.polls, b.polls) {
		t.Errorf("same-seed runs diverge in per-URL polls:\n%v\n%v", a.polls, b.polls)
	}
	if !reflect.DeepEqual(a.intervals, b.intervals) {
		t.Errorf("same-seed runs diverge in final intervals:\n%v\n%v", a.intervals, b.intervals)
	}
}

// TestSchedulerDebugEndpoint covers /debug/sched over the real AIDE
// handler: 404 in batch-sweep mode, then a JSON snapshot once a
// scheduler is attached, with sched.* metrics flowing into the shared
// registry.
func TestSchedulerDebugEndpoint(t *testing.T) {
	checkGoroutineLeaks(t)
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	web.Site("h.example").Page("/p").Set("hello\n")

	client := webclient.New(web)
	client.Clock = clock
	reg := obs.NewRegistry()
	client.Metrics = reg

	fac, err := snapshot.New(t.TempDir(), client, clock)
	if err != nil {
		t.Fatal(err)
	}
	server := aide.NewServer(fac, client, mustCfg(t, "Default 0\n"), clock)
	server.Metrics = reg
	aideSrv := httptest.NewServer(server.Handler(nil))
	defer aideSrv.Close()

	if code, _ := httpGet(t, aideSrv.URL+"/debug/sched"); code != 404 {
		t.Fatalf("/debug/sched without scheduler = %d, want 404", code)
	}

	sc := server.StartScheduler(sched.Config{MinInterval: time.Minute, MaxInterval: time.Hour, HostRPS: 100})
	server.Register("alice", aide.Registration{URL: "http://h.example/p", Title: "P"})
	clock.Advance(2 * time.Minute)
	sc.Tick(context.Background())

	code, body := httpGet(t, aideSrv.URL+"/debug/sched")
	if code != 200 {
		t.Fatalf("/debug/sched = %d\n%s", code, body)
	}
	var snap sched.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/debug/sched decode: %v\n%s", err, body)
	}
	if snap.Queue != 1 || len(snap.URLs) != 1 || snap.URLs[0].URL != "http://h.example/p" {
		t.Errorf("/debug/sched snapshot = %+v, want the one tracked URL", snap)
	}
	if snap.URLs[0].Samples == 0 {
		t.Errorf("tracked URL never polled: %+v", snap.URLs[0])
	}

	// The sched.* metric family is live in /debug/metrics.
	code, body = httpGet(t, aideSrv.URL+"/debug/metrics")
	if code != 200 {
		t.Fatalf("/debug/metrics = %d", code)
	}
	var names []string
	for _, want := range []string{"sched.urls", "sched.queue_len", "sched.polls.changed"} {
		if !containsMetric(body, want) {
			names = append(names, want)
		}
	}
	if len(names) > 0 {
		sort.Strings(names)
		t.Errorf("metrics missing %v in /debug/metrics:\n%s", names, body)
	}
}

func containsMetric(body, name string) bool {
	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		return false
	}
	for _, section := range doc {
		var m map[string]json.RawMessage
		if json.Unmarshal(section, &m) == nil {
			if _, ok := m[name]; ok {
				return true
			}
		}
	}
	return false
}
