package bench

// Chaos soak tests: a sweep over a fleet of part-faulty hosts must
// complete degraded rather than abort, the per-host circuit breakers
// must trip on dead hosts and recover when the fault clears, and the
// load-shedding gate's 503 + Retry-After must be honoured by the
// client's retry policy. Run with -race in CI (the chaos job).

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"aide/internal/aide"
	"aide/internal/breaker"
	"aide/internal/hotlist"
	"aide/internal/obs"
	"aide/internal/simclock"
	"aide/internal/snapshot"
	"aide/internal/tracker"
	"aide/internal/webclient"
	"aide/internal/websim"
)

// checkGoroutineLeaks registers a teardown (first, so it runs last)
// that fails the test if goroutines outlive it. A small slack plus a
// settling loop absorbs runtime background goroutines and the handful
// of request goroutines still unwinding from closed test servers.
func checkGoroutineLeaks(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(3 * time.Second)
		for {
			if runtime.NumGoroutine() <= before+2 {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// TestChaosSoakSweep is the acceptance scenario from the failure-
// isolation issue: ten hosts, four of them faulty (dead, hung, always-
// 503, flapping), a full sweep that completes with per-host
// ok/degraded/skipped accounting, breakers visible in /debug/health
// and the metrics registry, and recovery once the faults clear.
func TestChaosSoakSweep(t *testing.T) {
	checkGoroutineLeaks(t)
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	reg := obs.NewRegistry()
	web.Metrics = reg

	healthy := []string{"ok1.example", "ok2.example", "ok3.example", "ok4.example", "ok5.example", "ok6.example"}
	faulty := []string{"dead.example", "hung.example", "busy.example", "flap.example"}
	var entries []hotlist.Entry
	for _, h := range append(append([]string{}, healthy...), faulty...) {
		site := web.Site(h)
		for _, p := range []string{"/a", "/b", "/c"} {
			site.Page(p).Set("content of " + h + p)
			entries = append(entries, hotlist.Entry{URL: "http://" + h + p, Title: h + p})
		}
	}

	client := webclient.New(web)
	client.Clock = clock
	client.Metrics = reg
	// The per-attempt timeout is wall time — it is what unsticks a hung
	// host — and bounds every attempt at 50ms of real time.
	client.Timeout = 50 * time.Millisecond
	client.Retry = webclient.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Second, MaxDelay: time.Minute}
	client.Breakers = breaker.NewSet(breaker.Config{FailureThreshold: 3, Cooldown: 10 * time.Minute})
	client.Breakers.Clock = clock
	client.Breakers.Metrics = reg

	tr := tracker.New(client, mustCfg(t, "Default 0\n"), hotlist.NewHistory(), clock)
	tr.Metrics = reg
	tr.Opt.Concurrency = 4

	// Sweep 0: everything healthy, so every URL gains last-known-good
	// state for later staleness marking.
	for _, res := range tr.Run(context.Background(), entries) {
		if res.Status != tracker.Changed {
			t.Fatalf("healthy sweep: %s = %+v", res.Entry.URL, res)
		}
	}

	// Inject the faults: a dead host, a wedged host, a host shedding
	// every request with 503 + Retry-After, and a host down for the
	// first half-hour of every two-hour window.
	web.Site("dead.example").SetDown(true)
	web.Site("hung.example").SetHang(true)
	web.Site("busy.example").SetFaults(websim.FaultProfile{Seed: 7, FailProb: 1, RetryAfter: 30 * time.Second})
	web.Site("flap.example").SetFaults(websim.FaultProfile{FlapPeriod: 2 * time.Hour, FlapDown: 30 * time.Minute})

	// Sweep 1, degraded: it must complete — one result per entry — with
	// the faulty hosts' URLs failed-stale or skipped, and never hang
	// longer than the per-attempt timeout budget allows.
	wallStart := time.Now()
	results := tr.Run(context.Background(), entries)
	if wall := time.Since(wallStart); wall > 5*time.Second {
		t.Errorf("degraded sweep took %v of wall time; hung hosts are not being cut off", wall)
	}
	if len(results) != len(entries) {
		t.Fatalf("degraded sweep returned %d results for %d entries", len(results), len(entries))
	}
	perHost := map[string]tracker.HostCounts{}
	for _, hc := range tracker.HostSummary(results) {
		perHost[hc.Host] = hc
	}
	for _, h := range healthy {
		if hc := perHost[h]; hc.OK != 3 || hc.Degraded+hc.Skipped+hc.Failed != 0 {
			t.Errorf("healthy host %s: %+v, want 3 ok", h, hc)
		}
	}
	for _, h := range faulty {
		hc := perHost[h]
		if hc.OK != 0 {
			t.Errorf("faulty host %s: %+v, want 0 ok", h, hc)
		}
		if hc.Degraded == 0 {
			t.Errorf("faulty host %s: %+v, want >=1 degraded (stale last-known-good)", h, hc)
		}
		if hc.Degraded+hc.Skipped+hc.Failed != 3 {
			t.Errorf("faulty host %s: %+v does not account for its 3 URLs", h, hc)
		}
	}

	// The dead host's breaker must be open and fail the next request
	// fast, with the distinct Tripped classification.
	if st := client.Breakers.For("dead.example").State(); st != breaker.Open {
		t.Errorf("dead.example breaker = %v, want Open", st)
	}
	if _, err := client.Get(context.Background(), "http://dead.example/a"); !errors.Is(err, webclient.ErrBreakerOpen) {
		t.Errorf("request to tripped host: %v, want ErrBreakerOpen", err)
	} else if webclient.Classify(0, err) != webclient.Tripped {
		t.Errorf("tripped error classified %v", webclient.Classify(0, err))
	}
	if n := reg.Counter("breaker.trips").Value(); n < 2 {
		t.Errorf("breaker.trips = %d, want >= 2 (dead + busy at least)", n)
	}
	if reg.Counter("breaker.short_circuits").Value() == 0 {
		t.Error("breaker.short_circuits = 0, want > 0")
	}
	if reg.Counter("tracker.checks.degraded").Value() == 0 {
		t.Error("tracker.checks.degraded = 0, want > 0")
	}

	// /debug/health on an AIDE server sharing the client shows the
	// tripped hosts and the load-shedding gate.
	fac, err := snapshot.New(t.TempDir(), client, clock)
	if err != nil {
		t.Fatal(err)
	}
	server := aide.NewServer(fac, client, mustCfg(t, "Default 0\n"), clock)
	server.Metrics = reg
	server.MaxSimultaneous = 8
	aideSrv := httptest.NewServer(server.Handler(nil))
	defer aideSrv.Close()
	code, body := httpGet(t, aideSrv.URL+"/debug/health")
	if code != 200 {
		t.Fatalf("/debug/health: %d", code)
	}
	var health snapshot.HealthStatus
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/debug/health decode: %v\n%s", err, body)
	}
	if health.Status != "degraded" || health.OpenHosts == 0 {
		t.Errorf("health = %s with %d open hosts, want degraded with > 0\n%s",
			health.Status, health.OpenHosts, body)
	}
	foundDead := false
	for _, b := range health.Breakers {
		if b.Host == "dead.example" && b.State == "open" {
			foundDead = true
		}
	}
	if !foundDead {
		t.Errorf("dead.example not reported open in /debug/health:\n%s", body)
	}
	if health.Gate == nil || health.Gate.Capacity != 8 {
		t.Errorf("gate missing or wrong capacity in /debug/health:\n%s", body)
	}

	// The faults clear and the breaker cooldown passes: the next sweep's
	// half-open probes succeed, breakers close, and every host is OK.
	web.Site("dead.example").SetDown(false)
	web.Site("hung.example").SetHang(false)
	web.Site("busy.example").ClearFaults()
	web.Site("flap.example").ClearFaults()
	clock.Advance(15 * time.Minute)
	results = tr.Run(context.Background(), entries)
	for _, hc := range tracker.HostSummary(results) {
		if hc.OK != 3 {
			t.Errorf("after recovery, host %q: %+v, want 3 ok", hc.Host, hc)
		}
	}
	for _, h := range faulty {
		if st := client.Breakers.For(h).State(); st != breaker.Closed {
			t.Errorf("after recovery, %s breaker = %v, want Closed", h, st)
		}
	}
	if reg.Counter("breaker.recoveries").Value() == 0 {
		t.Error("breaker.recoveries = 0, want > 0")
	}
}

// rtFunc adapts a function to webclient.Transport for test hooks.
type rtFunc func(ctx context.Context, req *webclient.Request) (*webclient.Response, error)

func (f rtFunc) RoundTrip(ctx context.Context, req *webclient.Request) (*webclient.Response, error) {
	return f(ctx, req)
}

// TestChaosLoadSheddingRetryAfter closes the shedding loop over real
// sockets: a full gate answers 503 with Retry-After, and the client's
// retry policy honours the advertised pause instead of its own backoff.
func TestChaosLoadSheddingRetryAfter(t *testing.T) {
	checkGoroutineLeaks(t)
	release := make(chan struct{})
	occupied := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/slow" {
			close(occupied)
			<-release
		}
		w.WriteHeader(200)
		w.Write([]byte("served"))
	})
	gate := snapshot.NewGate(slow, 1)
	gate.RetryAfter = 3 * time.Second
	gate.Metrics = obs.NewRegistry()
	srv := httptest.NewServer(gate)
	defer srv.Close()

	// Occupy the single slot.
	go func() {
		resp, err := http.Get(srv.URL + "/slow")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-occupied

	clock := simclock.New(time.Time{})
	reg := obs.NewRegistry()
	client := webclient.New(&webclient.HTTPTransport{})
	client.Clock = clock
	client.Metrics = reg
	client.Retry = webclient.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Second, MaxDelay: time.Minute}

	// Retry pauses run on the simulated clock, so the retry follows the
	// shed attempt with no wall delay: free the slot from inside the
	// transport, after the first 503 lands but before the retry fires.
	base := client.Transport
	released := false
	client.Transport = rtFunc(func(ctx context.Context, req *webclient.Request) (*webclient.Response, error) {
		resp, err := base.RoundTrip(ctx, req)
		if err == nil && resp.Status == 503 && !released {
			released = true
			close(release)
			for gate.InFlight() != 0 { // wait for the slow request to drain
				time.Sleep(time.Millisecond)
			}
		}
		return resp, err
	})

	// First attempt is shed with 503 + Retry-After; the freed slot lets
	// the retry succeed. The pause is the server's 3s hint (spent on the
	// simulated clock), not the 1s backoff.
	info, err := client.Get(context.Background(), srv.URL+"/fast")
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != 200 || info.Body != "served" {
		t.Fatalf("after shedding: %+v", info)
	}
	if got := clock.Now().Sub(simclock.Epoch); got != 3*time.Second {
		t.Errorf("retry pause = %v, want the advertised 3s", got)
	}
	if n := reg.Counter("webclient.retries.retry-after").Value(); n != 1 {
		t.Errorf("retry-after retries = %d, want 1", n)
	}
	if gate.Rejected() == 0 {
		t.Error("gate rejected nothing")
	}
}
